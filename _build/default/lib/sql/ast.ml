(** Abstract syntax of the supported SQL dialect.

    Statements: CREATE TABLE, INSERT, SELECT (single table or one INNER
    JOIN, WHERE, ORDER BY, LIMIT, aggregates), UPDATE, DELETE. Positional
    parameters are written [?]. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat

type unop = Neg | Not

type expr =
  | Const of Gg_storage.Value.t
  | Col of string option * string  (** optional table qualifier *)
  | Param of int  (** 0-based positional parameter *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | In_list of expr * expr list  (** e IN (e1, e2, …) *)
  | Between of expr * expr * expr  (** e BETWEEN lo AND hi *)
  | Like of expr * expr  (** string pattern match, % and _ wildcards *)

type agg_fn = Count | Sum | Min | Max | Avg

type proj =
  | Star
  | Expr_proj of expr * string option  (** expression, optional alias *)
  | Agg of agg_fn * expr option * string option
      (** aggregate, argument ([None] means COUNT star), alias *)

type order_dir = Asc | Desc

type table_ref = { table : string; alias : string option }

type select = {
  projs : proj list;
  from : table_ref;
  join : (table_ref * expr) option;  (** INNER JOIN t ON e *)
  where : expr option;
  group_by : expr list;
  order_by : (expr * order_dir) list;
  limit : int option;
}

type stmt =
  | Select of select
  | Insert of {
      table : string;
      cols : string list option;
      rows : expr list list;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      name : string;
      cols : (string * Gg_storage.Schema.col_ty) list;
      key : string list;
    }
  | Create_index of { name : string; table : string; cols : string list }

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Concat -> "||"
