(** Expression evaluation over row environments. *)

exception Sql_error of string

module Env : sig
  type binding = {
    binding_name : string;  (** alias if given, else table name *)
    schema : Gg_storage.Schema.t;
    mutable row : Gg_storage.Value.t array;
  }

  type t = binding list

  val resolve : t -> string option -> string -> binding * int
  (** [resolve env qualifier col] finds the binding and column index.
      Raises {!Sql_error} on unknown or ambiguous columns. *)
end

val eval :
  Env.t -> params:Gg_storage.Value.t array -> Ast.expr -> Gg_storage.Value.t
(** Evaluate an expression. NULL propagates through arithmetic and
    comparisons; AND/OR treat NULL as false. Comparisons return
    [Int 1]/[Int 0]. Raises {!Sql_error} on type errors, missing columns
    or out-of-range parameters. *)

val eval_const : params:Gg_storage.Value.t array -> Ast.expr -> Gg_storage.Value.t
(** Evaluate an expression that must not reference columns (INSERT
    values, key equality right-hand sides). *)

val is_truthy : Gg_storage.Value.t -> bool
