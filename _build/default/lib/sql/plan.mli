(** Physical access-path selection.

    The planner inspects a statement's WHERE clause and chooses, per base
    table, between a primary-key point lookup, a key-prefix range scan,
    or a full scan with residual filtering. *)

type access =
  | Point of Ast.expr array
      (** one constant/parameter expression per key column *)
  | Prefix of Ast.expr array
      (** expressions for a strict prefix of the key columns *)
  | Sec_index of string * Ast.expr array
      (** secondary-index probe: index name + one expression per indexed
          column *)
  | Full

val access_path :
  Gg_storage.Schema.t -> names:string list -> Ast.expr option -> access
(** [access_path schema ~names where] — [names] are the identifiers
    (alias/table name) that refer to the target table; qualified columns
    with other qualifiers are ignored. Only top-level conjuncts of the
    form [col = expr] where [expr] is column-free are considered. *)

val access_path_table :
  Gg_storage.Table.t -> names:string list -> Ast.expr option -> access
(** Like {!access_path} but also considers the table's secondary
    indexes when the primary key is unusable. *)

val describe : access -> string
