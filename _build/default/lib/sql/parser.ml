open Ast

exception Parse_error of string

type state = { mutable tokens : Lexer.token list; mutable n_params : int }

let fail msg = raise (Parse_error msg)

let peek st = match st.tokens with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let token_to_string = function
  | Lexer.Ident s -> s
  | Lexer.Int_lit i -> string_of_int i
  | Lexer.Float_lit f -> string_of_float f
  | Lexer.Str_lit s -> Printf.sprintf "'%s'" s
  | Lexer.Punct p -> p
  | Lexer.Question -> "?"
  | Lexer.Eof -> "<eof>"

let expect_punct st p =
  match peek st with
  | Lexer.Punct q when q = p -> advance st
  | t -> fail (Printf.sprintf "expected %s, got %s" p (token_to_string t))

let expect_kw st kw =
  match peek st with
  | Lexer.Ident s when s = kw -> advance st
  | t -> fail (Printf.sprintf "expected %s, got %s" kw (token_to_string t))

let accept_kw st kw =
  match peek st with
  | Lexer.Ident s when s = kw ->
    advance st;
    true
  | _ -> false

let accept_punct st p =
  match peek st with
  | Lexer.Punct q when q = p ->
    advance st;
    true
  | _ -> false

(* Some TPC-C-ish column names collide with soft keywords; allow any ident
   for column/table positions except hard structural keywords. *)
let name st =
  match peek st with
  | Lexer.Ident s
    when not
           (List.mem s
              [
                "select"; "from"; "where"; "insert"; "update"; "delete";
                "create"; "values"; "set"; "order"; "limit"; "join"; "on";
                "and"; "or"; "not";
              ]) ->
    advance st;
    s
  | t -> fail (Printf.sprintf "expected name, got %s" (token_to_string t))

(* --- expressions --- *)

let rec expr st = or_expr st

and or_expr st =
  let left = ref (and_expr st) in
  while accept_kw st "or" do
    let right = and_expr st in
    left := Binop (Or, !left, right)
  done;
  !left

and and_expr st =
  let left = ref (not_expr st) in
  while accept_kw st "and" do
    let right = not_expr st in
    left := Binop (And, !left, right)
  done;
  !left

and not_expr st =
  if accept_kw st "not" then Unop (Not, not_expr st) else cmp_expr st

and cmp_expr st =
  let left = add_expr st in
  let negated = accept_kw st "not" in
  let wrap e = if negated then Unop (Not, e) else e in
  match peek st with
  | Lexer.Ident "in" ->
    advance st;
    expect_punct st "(";
    let items = ref [ expr st ] in
    while accept_punct st "," do
      items := expr st :: !items
    done;
    expect_punct st ")";
    wrap (In_list (left, List.rev !items))
  | Lexer.Ident "between" ->
    advance st;
    let lo = add_expr st in
    expect_kw st "and";
    let hi = add_expr st in
    wrap (Between (left, lo, hi))
  | Lexer.Ident "like" ->
    advance st;
    wrap (Like (left, add_expr st))
  | _ when negated -> fail "expected IN, BETWEEN or LIKE after NOT"
  | _ -> (
    let op =
      match peek st with
      | Lexer.Punct "=" -> Some Eq
      | Lexer.Punct "<>" -> Some Ne
      | Lexer.Punct "<" -> Some Lt
      | Lexer.Punct "<=" -> Some Le
      | Lexer.Punct ">" -> Some Gt
      | Lexer.Punct ">=" -> Some Ge
      | _ -> None
    in
    match op with
    | None -> left
    | Some op ->
      advance st;
      let right = add_expr st in
      Binop (op, left, right))

and add_expr st =
  let left = ref (mul_expr st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.Punct "+" ->
      advance st;
      left := Binop (Add, !left, mul_expr st)
    | Lexer.Punct "-" ->
      advance st;
      left := Binop (Sub, !left, mul_expr st)
    | Lexer.Punct "||" ->
      advance st;
      left := Binop (Concat, !left, mul_expr st)
    | _ -> continue := false
  done;
  !left

and mul_expr st =
  let left = ref (unary_expr st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.Punct "*" ->
      advance st;
      left := Binop (Mul, !left, unary_expr st)
    | Lexer.Punct "/" ->
      advance st;
      left := Binop (Div, !left, unary_expr st)
    | Lexer.Punct "%" ->
      advance st;
      left := Binop (Mod, !left, unary_expr st)
    | _ -> continue := false
  done;
  !left

and unary_expr st =
  if accept_punct st "-" then Unop (Neg, unary_expr st) else primary st

and primary st =
  match peek st with
  | Lexer.Int_lit i ->
    advance st;
    Const (Gg_storage.Value.Int i)
  | Lexer.Float_lit f ->
    advance st;
    Const (Gg_storage.Value.Float f)
  | Lexer.Str_lit s ->
    advance st;
    Const (Gg_storage.Value.Str s)
  | Lexer.Question ->
    advance st;
    let p = st.n_params in
    st.n_params <- st.n_params + 1;
    Param p
  | Lexer.Punct "(" ->
    advance st;
    let e = expr st in
    expect_punct st ")";
    e
  | Lexer.Ident "null" ->
    advance st;
    Const Gg_storage.Value.Null
  | Lexer.Ident _ ->
    let first = name st in
    if accept_punct st "." then
      let col = name st in
      Col (Some first, col)
    else Col (None, first)
  | t -> fail (Printf.sprintf "unexpected token %s" (token_to_string t))

(* --- projections --- *)

let agg_of_string = function
  | "count" -> Some Count
  | "sum" -> Some Sum
  | "min" -> Some Min
  | "max" -> Some Max
  | "avg" -> Some Avg
  | _ -> None

let alias_opt st =
  if accept_kw st "as" then Some (name st)
  else
    match peek st with
    | Lexer.Ident s when not (Lexer.is_keyword s) ->
      advance st;
      Some s
    | _ -> None

let proj st =
  match peek st with
  | Lexer.Punct "*" ->
    advance st;
    Star
  | Lexer.Ident s when agg_of_string s <> None -> (
    match st.tokens with
    | Lexer.Ident _ :: Lexer.Punct "(" :: _ ->
      advance st;
      advance st;
      let fn = Option.get (agg_of_string s) in
      let arg =
        if accept_punct st "*" then None
        else Some (expr st)
      in
      expect_punct st ")";
      let alias = alias_opt st in
      Agg (fn, arg, alias)
    | _ ->
      let e = expr st in
      Expr_proj (e, alias_opt st))
  | _ ->
    let e = expr st in
    Expr_proj (e, alias_opt st)

let table_ref st =
  let table = name st in
  let alias = alias_opt st in
  { table; alias }

(* --- statements --- *)

let select_stmt st =
  expect_kw st "select";
  let projs = ref [ proj st ] in
  while accept_punct st "," do
    projs := proj st :: !projs
  done;
  expect_kw st "from";
  let from = table_ref st in
  let join =
    if accept_kw st "inner" || (match peek st with Lexer.Ident "join" -> true | _ -> false)
    then begin
      expect_kw st "join";
      let tr = table_ref st in
      expect_kw st "on";
      let on = expr st in
      Some (tr, on)
    end
    else None
  in
  let where = if accept_kw st "where" then Some (expr st) else None in
  let group_by =
    if accept_kw st "group" then begin
      expect_kw st "by";
      let items = ref [ expr st ] in
      while accept_punct st "," do
        items := expr st :: !items
      done;
      List.rev !items
    end
    else []
  in
  let order_by =
    if accept_kw st "order" then begin
      expect_kw st "by";
      let item () =
        let e = expr st in
        let dir =
          if accept_kw st "desc" then Desc
          else begin
            ignore (accept_kw st "asc");
            Asc
          end
        in
        (e, dir)
      in
      let items = ref [ item () ] in
      while accept_punct st "," do
        items := item () :: !items
      done;
      List.rev !items
    end
    else []
  in
  let limit =
    if accept_kw st "limit" then
      match peek st with
      | Lexer.Int_lit i ->
        advance st;
        Some i
      | t -> fail (Printf.sprintf "LIMIT expects an integer, got %s" (token_to_string t))
    else None
  in
  Select { projs = List.rev !projs; from; join; where; group_by; order_by; limit }

let insert_stmt st =
  expect_kw st "insert";
  expect_kw st "into";
  let table = name st in
  let cols =
    if accept_punct st "(" then begin
      let cols = ref [ name st ] in
      while accept_punct st "," do
        cols := name st :: !cols
      done;
      expect_punct st ")";
      Some (List.rev !cols)
    end
    else None
  in
  expect_kw st "values";
  let tuple () =
    expect_punct st "(";
    let vals = ref [ expr st ] in
    while accept_punct st "," do
      vals := expr st :: !vals
    done;
    expect_punct st ")";
    List.rev !vals
  in
  let rows = ref [ tuple () ] in
  while accept_punct st "," do
    rows := tuple () :: !rows
  done;
  Insert { table; cols; rows = List.rev !rows }

let update_stmt st =
  expect_kw st "update";
  let table = name st in
  expect_kw st "set";
  let assignment () =
    let col = name st in
    expect_punct st "=";
    let e = expr st in
    (col, e)
  in
  let sets = ref [ assignment () ] in
  while accept_punct st "," do
    sets := assignment () :: !sets
  done;
  let where = if accept_kw st "where" then Some (expr st) else None in
  Update { table; sets = List.rev !sets; where }

let delete_stmt st =
  expect_kw st "delete";
  expect_kw st "from";
  let table = name st in
  let where = if accept_kw st "where" then Some (expr st) else None in
  Delete { table; where }

let col_ty st =
  match peek st with
  | Lexer.Ident "int" ->
    advance st;
    Gg_storage.Schema.TInt
  | Lexer.Ident "float" ->
    advance st;
    Gg_storage.Schema.TFloat
  | Lexer.Ident ("string" | "text") ->
    advance st;
    Gg_storage.Schema.TStr
  | Lexer.Ident "varchar" ->
    advance st;
    if accept_punct st "(" then begin
      (match peek st with
      | Lexer.Int_lit _ -> advance st
      | t -> fail (Printf.sprintf "varchar expects a size, got %s" (token_to_string t)));
      expect_punct st ")"
    end;
    Gg_storage.Schema.TStr
  | t -> fail (Printf.sprintf "expected a column type, got %s" (token_to_string t))

let create_index_stmt st =
  (* CREATE INDEX name ON table (col, ...) *)
  let iname = name st in
  expect_kw st "on";
  let table = name st in
  expect_punct st "(";
  let cols = ref [ name st ] in
  while accept_punct st "," do
    cols := name st :: !cols
  done;
  expect_punct st ")";
  Create_index { name = iname; table; cols = List.rev !cols }

let create_stmt st =
  expect_kw st "create";
  if accept_kw st "index" then create_index_stmt st
  else begin
  expect_kw st "table";
  let table = name st in
  expect_punct st "(";
  let cols = ref [] in
  let key = ref [] in
  let item () =
    if accept_kw st "primary" then begin
      expect_kw st "key";
      expect_punct st "(";
      let ks = ref [ name st ] in
      while accept_punct st "," do
        ks := name st :: !ks
      done;
      expect_punct st ")";
      key := List.rev !ks
    end
    else begin
      let cname = name st in
      let ty = col_ty st in
      cols := (cname, ty) :: !cols
    end
  in
  item ();
  while accept_punct st "," do
    item ()
  done;
  expect_punct st ")";
  Create_table { name = table; cols = List.rev !cols; key = !key }
  end

let statement st =
  match peek st with
  | Lexer.Ident "select" -> select_stmt st
  | Lexer.Ident "insert" -> insert_stmt st
  | Lexer.Ident "update" -> update_stmt st
  | Lexer.Ident "delete" -> delete_stmt st
  | Lexer.Ident "create" -> create_stmt st
  | t -> fail (Printf.sprintf "expected a statement, got %s" (token_to_string t))

let parse input =
  let st = { tokens = Lexer.tokenize input; n_params = 0 } in
  let s = statement st in
  ignore (accept_punct st ";");
  (match peek st with
  | Lexer.Eof -> ()
  | t -> fail (Printf.sprintf "trailing input: %s" (token_to_string t)));
  s

let parse_result input =
  match parse input with
  | s -> Ok s
  | exception Parse_error m -> Error ("parse error: " ^ m)
  | exception Lexer.Lex_error m -> Error ("lex error: " ^ m)
