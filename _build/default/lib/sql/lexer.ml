type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Punct of string
  | Question
  | Eof

exception Lex_error of string

let keywords =
  [
    "select"; "from"; "where"; "insert"; "into"; "values"; "update"; "set";
    "delete"; "create"; "table"; "primary"; "key"; "and"; "or"; "not";
    "order"; "by"; "asc"; "desc"; "limit"; "join"; "inner"; "on"; "as";
    "null"; "int"; "float"; "string"; "varchar"; "text"; "count"; "sum";
    "min"; "max"; "avg"; "group"; "having"; "in"; "between"; "like";
    "distinct"; "index";
  ]

let is_keyword s = List.mem s keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.lowercase_ascii (String.sub input start (!i - start))))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      if !i < n && input.[!i] = '.' then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        emit (Float_lit (float_of_string (String.sub input start (!i - start))))
      end
      else emit (Int_lit (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error "unterminated string literal");
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      emit (Str_lit (Buffer.contents buf))
    end
    else if c = '?' then begin
      emit Question;
      incr i
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub input !i 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "<>" | "!=" | "||") as p) ->
        emit (Punct (if p = "!=" then "<>" else p));
        i := !i + 2
      | Some _ | None -> (
        match c with
        | '(' | ')' | ',' | '*' | '+' | '-' | '/' | '%' | '=' | '<' | '>'
        | '.' | ';' ->
          emit (Punct (String.make 1 c));
          incr i
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c)))
    end
  done;
  emit Eof;
  List.rev !tokens
