(** SQL tokenizer. Keywords and identifiers are case-insensitive
    (identifiers are lowercased); string literals use single quotes with
    [''] as the escape. *)

type token =
  | Ident of string  (** lowercased *)
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Punct of string  (** operators and punctuation, e.g. "(", "<=", "," *)
  | Question  (** positional parameter *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list
(** Raises {!Lex_error} on malformed input. The result always ends with
    [Eof]. *)

val is_keyword : string -> bool
(** Recognizes the dialect's reserved words (lowercase form). *)
