lib/sql/executor.mli: Ast Gg_crdt Gg_storage Stdlib
