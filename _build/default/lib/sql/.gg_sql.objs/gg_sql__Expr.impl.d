lib/sql/expr.ml: Array Ast Gg_storage List Printf String
