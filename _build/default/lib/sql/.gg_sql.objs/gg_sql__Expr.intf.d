lib/sql/expr.mli: Ast Gg_storage
