lib/sql/parser.ml: Ast Gg_storage Lexer List Option Printf
