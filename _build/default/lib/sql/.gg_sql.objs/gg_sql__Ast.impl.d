lib/sql/ast.ml: Gg_storage
