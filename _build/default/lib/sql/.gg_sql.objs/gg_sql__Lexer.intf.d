lib/sql/lexer.mli:
