lib/sql/plan.ml: Array Ast Gg_storage List Option Printf
