lib/sql/executor.ml: Array Ast Env Expr Gg_crdt Gg_storage Hashtbl List Option Parser Plan Printf
