lib/sql/plan.mli: Ast Gg_storage
