lib/raft/raft.mli: Gg_sim Gg_util
