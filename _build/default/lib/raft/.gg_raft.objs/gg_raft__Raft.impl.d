lib/raft/raft.ml: Array Gg_sim Gg_util List Option String
