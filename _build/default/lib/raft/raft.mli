(** Raft consensus over the discrete-event simulator.

    Used by GeoGauss the way the paper uses it (§5.2): as a light
    membership service that reaches consensus on the set of live nodes
    (invoked only when liveness changes), and as the heavy-weight
    write-set replication option benchmarked in Fig 12.

    The implementation covers leader election with randomized timeouts,
    log replication with the log-matching property, commitment by
    majority match, and follower catch-up. Logs survive crashes (they
    model stable storage); volatile role state resets on recovery. *)

type role = Follower | Candidate | Leader

type entry = { term : int; data : string }

type t

val create :
  Gg_sim.Net.t ->
  rng:Gg_util.Rng.t ->
  ?heartbeat_us:int ->
  ?election_timeout_us:int ->
  apply:(node:int -> index:int -> string -> unit) ->
  unit ->
  t
(** One Raft peer per network node. [apply] fires on every node as
    entries commit, in log order, exactly once per (node, index).
    Defaults: 50 ms heartbeat, 300 ms base election timeout (randomized
    up to 2x). *)

val start : t -> unit
(** Arm timers. Call once before running the simulation. *)

val n_nodes : t -> int

val propose : t -> node:int -> string -> bool
(** [propose t ~node data] appends to the leader's log if [node]
    currently believes itself leader; [false] otherwise (caller retries
    against {!current_leader}). *)

val propose_anywhere : t -> string -> bool
(** Propose via the current leader, if any. *)

val current_leader : t -> int option
(** The live leader with the highest term, if one exists. *)

val role : t -> int -> role
val term : t -> int -> int
val log_length : t -> int -> int
val commit_index : t -> int -> int

val entry_at : t -> node:int -> index:int -> entry option
(** 1-based index, entries up to [log_length]. *)
