(** One function per table/figure of the paper's evaluation (§7). Each
    runs the relevant simulated-cluster experiments and prints
    paper-style tables to stdout.

    [fast] shrinks populations and measurement windows (used by tests
    and smoke runs); shapes remain, absolute numbers get noisier. *)

val fig5 : ?fast:bool -> unit -> unit
(** Cross-system throughput/latency comparison on YCSB-RO/MC/HC and
    TPC-C. *)

val table2 : ?fast:bool -> unit -> unit
(** Per-phase runtime breakdown of a committed TPC-C transaction for
    GeoG-S / GeoG-A / GeoGauss. *)

val fig6 : ?fast:bool -> unit -> unit
(** Per-epoch committed transactions and latency, GeoGauss vs GeoG-S
    (TPC-C). *)

val fig7 : ?fast:bool -> unit -> unit
(** Throughput slowdown vs fraction of long transactions (20 ms and
    100 ms injected delays). *)

val table3 : ?fast:bool -> unit -> unit
(** Average compressed WAN traffic per transaction, GeoGauss vs
    Calvin. *)

val fig8 : ?fast:bool -> unit -> unit
(** Effect of epoch length (1–200 ms). *)

val fig9 : ?fast:bool -> unit -> unit
(** Effect of isolation level (RC / RR / SI). *)

val fig10 : ?fast:bool -> unit -> unit
(** Effect of contention (Zipf theta sweep). *)

val fig11 : ?fast:bool -> unit -> unit
(** Scalability: 3–15 replicas (China) and 3–25 replicas (worldwide). *)

val fig12 : ?fast:bool -> unit -> unit
(** Fault-tolerance modes: GeoG-LB / GeoG-RB / GeoG-Raft vs Calvin-Raft
    / Aria-Raft. *)

val fig13 : ?fast:bool -> unit -> unit
(** Throughput/latency timeline across a node crash and recovery. *)

val ablations : ?fast:bool -> unit -> unit
(** Not a paper figure: ablations of the §5.1 design choices
    (pipelining, merge parallelism, write-set size). *)

val all : (string * (?fast:bool -> unit -> unit)) list
(** Experiment registry in paper order (plus the ablations). *)

val run : ?fast:bool -> string -> bool
(** Run one experiment by name ("fig5", "table2", …); false if
    unknown. *)
