lib/harness/driver.mli: Geogauss Gg_engines Gg_sim Gg_storage Gg_workload Result
