lib/harness/result.ml: Gg_util
