lib/harness/driver.ml: Geogauss Gg_engines Gg_sim Gg_util Gg_workload List Printf Result
