lib/harness/result.mli: Gg_util
