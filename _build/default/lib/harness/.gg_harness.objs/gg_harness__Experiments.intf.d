lib/harness/experiments.mli:
