lib/harness/experiments.ml: Driver Float Geogauss Gg_engines Gg_sim Gg_util Gg_workload List Printf Result
