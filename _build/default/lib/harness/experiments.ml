module Topology = Gg_sim.Topology
module Ycsb = Gg_workload.Ycsb
module Tpcc = Gg_workload.Tpcc
module Params = Geogauss.Params
module Tablefmt = Gg_util.Tablefmt
module Stats = Gg_util.Stats
module Engine = Gg_engines.Engine

let f = Tablefmt.fmt_f

(* --- shared settings --- *)

type setting = {
  ycsb_records : int;
  ycsb_connections : int;
  tpcc_cfg : Tpcc.config;
  tpcc_connections : int;
  warmup_ms : int;
  measure_ms : int;
}

let setting ~fast =
  if fast then
    {
      ycsb_records = 5_000;
      ycsb_connections = 32;
      tpcc_cfg = { Tpcc.default with Tpcc.warehouses = 8 };
      tpcc_connections = 16;
      warmup_ms = 400;
      measure_ms = 1_000;
    }
  else
    {
      ycsb_records = 100_000;
      ycsb_connections = 256;
      tpcc_cfg = Tpcc.default;
      tpcc_connections = 40;
      (* 120 total over 3 nodes, as in the paper *)
      warmup_ms = 1_000;
      measure_ms = 4_000;
    }

let ycsb_profile s base = Ycsb.with_records base s.ycsb_records

let engine_cfg = Engine.default_config

(* GeoGauss variants run through the full cluster. *)
let geo_variant s ?(params = Params.default) ~variant ~label ~load ~gen
    ~connections () =
  let params = Params.with_variant params variant in
  let r, _ =
    Driver.run_geogauss ~params ~connections ~topology:(Topology.china3 ())
      ~load ~gen ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()
  in
  r

let engine_run s (module E : Engine.S) ~gen ~connections ~label =
  Driver.run_engine
    (module E)
    ~config:engine_cfg ~topology:(Topology.china3 ()) ~gen ~connections
    ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()

(* --- Fig 5: cross-system comparison --- *)

let fig5_workloads s =
  [
    ("YCSB-RO", `Ycsb (ycsb_profile s Ycsb.read_only));
    ("YCSB-MC", `Ycsb (ycsb_profile s Ycsb.medium_contention));
    ("YCSB-HC", `Ycsb (ycsb_profile s Ycsb.high_contention));
    ("TPC-C", `Tpcc s.tpcc_cfg);
  ]

let fig5 ?(fast = false) () =
  let s = setting ~fast in
  List.iter
    (fun (wname, workload) ->
      let gen, load, connections =
        match workload with
        | `Ycsb p -> (Driver.ycsb_gens p ~seed:11, Ycsb.load p, s.ycsb_connections)
        | `Tpcc cfg -> (Driver.tpcc_gens cfg ~seed:11, Tpcc.load cfg, s.tpcc_connections)
      in
      let is_tpcc = match workload with `Tpcc _ -> true | `Ycsb _ -> false in
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 5 — %s (3 regions, China)" wname)
          ~headers:Result.headers
      in
      let add r = Tablefmt.add_row table (Result.row r) in
      add
        (geo_variant s ~variant:Params.Optimistic ~label:"GeoGauss" ~load ~gen
           ~connections ());
      add
        (geo_variant s ~variant:Params.Sync_exec ~label:"GeoG-S" ~load ~gen
           ~connections ());
      add
        (geo_variant s ~variant:Params.Async_merge ~label:"GeoG-A" ~load ~gen
           ~connections ());
      add (engine_run s (module Gg_engines.Crdb) ~gen ~connections ~label:"CRDB");
      add (engine_run s (module Gg_engines.Calvin) ~gen ~connections ~label:"Calvin");
      add (engine_run s (module Gg_engines.Aria) ~gen ~connections ~label:"Aria");
      if not is_tpcc then begin
        add
          (engine_run s (module Gg_engines.Calvinfs) ~gen ~connections
             ~label:"CalvinFS");
        add
          (engine_run s (module Gg_engines.Qstore) ~gen ~connections
             ~label:"Q-Store");
        add (engine_run s (module Gg_engines.Slog) ~gen ~connections ~label:"SLOG");
        add (engine_run s (module Gg_engines.Anna) ~gen ~connections ~label:"Anna")
      end;
      Tablefmt.print table)
    (fig5_workloads s)

(* --- Table 2: phase breakdown (TPC-C) --- *)

let table2 ?(fast = false) () =
  let s = setting ~fast in
  let gen = Driver.tpcc_gens s.tpcc_cfg ~seed:21 in
  let load = Tpcc.load s.tpcc_cfg in
  let table =
    Tablefmt.create
      ~title:"Table 2 — Runtime breakdown of a committed TPC-C transaction (ms)"
      ~headers:[ "phase"; "GeoG-S"; "GeoG-A"; "GeoGauss" ]
  in
  let phases variant =
    let params = Params.with_variant Params.default variant in
    let _, extra =
      Driver.run_geogauss ~params ~connections:s.tpcc_connections
        ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms
        ~label:(Params.variant_to_string variant)
        ()
    in
    (* average across the three nodes *)
    let n = List.length extra.Driver.phase_means in
    List.fold_left
      (fun (p, e, w, m, l) (_, (p', e', w', m', l')) ->
        (p +. p', e +. e', w +. w', m +. m', l +. l'))
      (0., 0., 0., 0., 0.) extra.Driver.phase_means
    |> fun (p, e, w, m, l) ->
    let d x = x /. float_of_int n /. 1000.0 in
    (d p, d e, d w, d m, d l)
  in
  let ps, pa, pg =
    ( phases Params.Sync_exec,
      phases Params.Async_merge,
      phases Params.Optimistic )
  in
  let row name get =
    Tablefmt.add_row table [ name; f (get ps); f (get pa); f (get pg) ]
  in
  row "SQL Parse" (fun (p, _, _, _, _) -> p);
  row "Execute" (fun (_, e, _, _, _) -> e);
  row "Wait" (fun (_, _, w, _, _) -> w);
  row "Merge" (fun (_, _, _, m, _) -> m);
  row "Log" (fun (_, _, _, _, l) -> l);
  Tablefmt.print table

(* --- Fig 6: per-epoch behaviour --- *)

let fig6 ?(fast = false) () =
  let s = setting ~fast in
  let gen = Driver.tpcc_gens s.tpcc_cfg ~seed:31 in
  let load = Tpcc.load s.tpcc_cfg in
  let cells variant =
    let params = Params.with_variant Params.default variant in
    let _, extra =
      Driver.run_geogauss ~params ~connections:s.tpcc_connections
        ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms
        ~label:(Params.variant_to_string variant)
        ()
    in
    extra.Driver.epoch_cells
  in
  let gg = cells Params.Optimistic and gs = cells Params.Sync_exec in
  let table =
    Tablefmt.create
      ~title:
        "Fig 6 — Committed txns and mean latency per epoch (TPC-C, node 0, \
         10 ms epochs)"
      ~headers:
        [ "epoch"; "GeoGauss commits"; "GeoGauss lat (ms)"; "GeoG-S commits";
          "GeoG-S lat (ms)" ]
  in
  let lookup cells e =
    match List.assoc_opt e cells with
    | Some (c : Geogauss.Metrics.epoch_cell) ->
      (c.Geogauss.Metrics.committed, Stats.Acc.mean c.Geogauss.Metrics.latency /. 1000.0)
    | None -> (0, 0.0)
  in
  let first =
    match gg with (e, _) :: _ -> e | [] -> 0
  in
  let n_epochs = if fast then 15 else 30 in
  for e = first to first + n_epochs - 1 do
    let c1, l1 = lookup gg e and c2, l2 = lookup gs e in
    Tablefmt.add_row table
      [ string_of_int e; string_of_int c1; f l1; string_of_int c2; f l2 ]
  done;
  Tablefmt.print table

(* --- Fig 7: long transactions --- *)

let fig7 ?(fast = false) () =
  let s = setting ~fast in
  let fractions = [ 0.0; 0.02; 0.05; 0.1 ] in
  List.iter
    (fun delay_ms ->
      let table =
        Tablefmt.create
          ~title:
            (Printf.sprintf
               "Fig 7 — Throughput slowdown vs fraction of %d ms long txns \
                (YCSB-MC)"
               delay_ms)
          ~headers:
            ("system"
            :: List.map (fun fr -> Printf.sprintf "%.0f%%" (fr *. 100.)) fractions)
      in
      let series run_for =
        let base = ref None in
        List.map
          (fun frac ->
            let tput = run_for frac in
            let b = match !base with None -> base := Some tput; tput | Some b -> b in
            Printf.sprintf "%.2fx" (tput /. Float.max 1.0 b))
          fractions
      in
      let profile frac =
        Ycsb.with_long_txns
          (ycsb_profile s Ycsb.medium_contention)
          ~frac ~delay_us:(delay_ms * 1000)
      in
      let geo frac =
        let p = profile frac in
        (geo_variant s ~variant:Params.Optimistic ~label:"GeoGauss"
           ~load:(Ycsb.load p)
           ~gen:(Driver.ycsb_gens p ~seed:41)
           ~connections:s.ycsb_connections ())
          .Result.tput
      in
      let eng (module E : Engine.S) frac =
        let p = profile frac in
        (engine_run s
           (module E)
           ~gen:(Driver.ycsb_gens p ~seed:41)
           ~connections:s.ycsb_connections ~label:E.name)
          .Result.tput
      in
      Tablefmt.add_row table ("GeoGauss" :: series geo);
      Tablefmt.add_row table ("Calvin" :: series (eng (module Gg_engines.Calvin)));
      Tablefmt.add_row table ("Aria" :: series (eng (module Gg_engines.Aria)));
      Tablefmt.add_row table ("CRDB" :: series (eng (module Gg_engines.Crdb)));
      Tablefmt.print table)
    (if fast then [ 20 ] else [ 20; 100 ])

(* --- Table 3: WAN traffic --- *)

let table3 ?(fast = false) () =
  let s = setting ~fast in
  let table =
    Tablefmt.create
      ~title:"Table 3 — Average WAN traffic per transaction (KB/txn, gzip'd)"
      ~headers:[ "system"; "YCSB-RO"; "YCSB-MC"; "YCSB-HC"; "TPC-C" ]
  in
  let per_workload run =
    List.map
      (fun (_, workload) ->
        let gen, load, connections =
          match workload with
          | `Ycsb p ->
            (Driver.ycsb_gens p ~seed:51, Ycsb.load p, s.ycsb_connections)
          | `Tpcc cfg ->
            (Driver.tpcc_gens cfg ~seed:51, Tpcc.load cfg, s.tpcc_connections)
        in
        f (run ~gen ~load ~connections))
      (fig5_workloads s)
  in
  Tablefmt.add_row table
    ("GeoGauss"
    :: per_workload (fun ~gen ~load ~connections ->
           (geo_variant s ~variant:Params.Optimistic ~label:"GeoGauss" ~load
              ~gen ~connections ())
             .Result.wan_kb_per_txn));
  Tablefmt.add_row table
    ("Calvin"
    :: per_workload (fun ~gen ~load:_ ~connections ->
           (engine_run s (module Gg_engines.Calvin) ~gen ~connections
              ~label:"Calvin")
             .Result.wan_kb_per_txn));
  Tablefmt.print table

(* --- Fig 8: epoch length --- *)

let fig8 ?(fast = false) () =
  let s = setting ~fast in
  let lengths = if fast then [ 1; 10; 50 ] else [ 1; 5; 10; 20; 50; 100; 200 ] in
  List.iter
    (fun (wname, load, gen, connections) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 8 — Effect of epoch length (%s)" wname)
          ~headers:[ "epoch (ms)"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
      in
      List.iter
        (fun ms ->
          let params = Params.with_epoch_ms Params.default ms in
          let r, _ =
            Driver.run_geogauss ~params ~connections
              ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
              ~measure_ms:s.measure_ms
              ~label:(string_of_int ms)
              ()
          in
          Tablefmt.add_row table
            [
              string_of_int ms; f ~dec:0 r.Result.tput; f r.Result.mean_ms;
              f r.Result.p99_ms;
            ])
        lengths;
      Tablefmt.print table)
    [
      (let p = ycsb_profile s Ycsb.medium_contention in
       ( "YCSB-MC", Ycsb.load p, Driver.ycsb_gens p ~seed:61,
         s.ycsb_connections ));
      ( "TPC-C", Tpcc.load s.tpcc_cfg, Driver.tpcc_gens s.tpcc_cfg ~seed:61,
        s.tpcc_connections );
    ]

(* --- Fig 9: isolation levels --- *)

let fig9 ?(fast = false) () =
  let s = setting ~fast in
  List.iter
    (fun (wname, load, gen, connections) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 9 — Isolation levels (%s)" wname)
          ~headers:
            [ "isolation"; "tput (txn/s)"; "mean lat (ms)"; "abort rate" ]
      in
      List.iter
        (fun iso ->
          let params = Params.with_isolation Params.default iso in
          let r, _ =
            Driver.run_geogauss ~params ~connections
              ~topology:(Topology.china3 ()) ~load ~gen ~warmup_ms:s.warmup_ms
              ~measure_ms:s.measure_ms
              ~label:(Params.isolation_to_string iso)
              ()
          in
          Tablefmt.add_row table
            [
              Params.isolation_to_string iso; f ~dec:0 r.Result.tput;
              f r.Result.mean_ms; f ~dec:3 r.Result.abort_rate;
            ])
        [ Params.RC; Params.RR; Params.SI ];
      Tablefmt.print table)
    [
      (let p = ycsb_profile s Ycsb.medium_contention in
       ( "YCSB-MC", Ycsb.load p, Driver.ycsb_gens p ~seed:71,
         s.ycsb_connections ));
      ( "TPC-C", Tpcc.load s.tpcc_cfg, Driver.tpcc_gens s.tpcc_cfg ~seed:71,
        s.tpcc_connections );
    ]

(* --- Fig 10: contention --- *)

let fig10 ?(fast = false) () =
  let s = setting ~fast in
  let thetas = if fast then [ 0.0; 0.8; 0.99 ] else [ 0.0; 0.2; 0.4; 0.6; 0.8; 0.9; 0.99 ] in
  List.iter
    (fun (mix_name, base) ->
      let table =
        Tablefmt.create
          ~title:(Printf.sprintf "Fig 10 — Contention sweep (%s mix)" mix_name)
          ~headers:[ "theta"; "tput (txn/s)"; "mean lat (ms)"; "abort rate" ]
      in
      List.iter
        (fun theta ->
          let p = Ycsb.with_theta (ycsb_profile s base) theta in
          let r =
            geo_variant s ~variant:Params.Optimistic
              ~label:(f theta)
              ~load:(Ycsb.load p)
              ~gen:(Driver.ycsb_gens p ~seed:81)
              ~connections:s.ycsb_connections ()
          in
          Tablefmt.add_row table
            [
              f theta; f ~dec:0 r.Result.tput; f r.Result.mean_ms;
              f ~dec:3 r.Result.abort_rate;
            ])
        thetas;
      Tablefmt.print table)
    [ ("80/20", Ycsb.medium_contention); ("50/50", Ycsb.high_contention) ]

(* --- Fig 11: scalability --- *)

let fig11 ?(fast = false) () =
  let s = setting ~fast in
  (* Smaller per-node population: up to 25 replicas live in one process. *)
  let p = Ycsb.with_records Ycsb.medium_contention (if fast then 2_000 else 20_000) in
  let connections = if fast then 16 else 128 in
  let run topo =
    let r, _ =
      Driver.run_geogauss ~connections ~topology:topo ~load:(Ycsb.load p)
        ~gen:(Driver.ycsb_gens p ~seed:91) ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms ~label:topo.Topology.name ()
    in
    r
  in
  let table_of title topos =
    let table =
      Tablefmt.create ~title
        ~headers:[ "replicas"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
    in
    List.iter
      (fun topo ->
        let r = run topo in
        Tablefmt.add_row table
          [
            string_of_int (Topology.n_nodes topo); f ~dec:0 r.Result.tput;
            f r.Result.mean_ms; f r.Result.p99_ms;
          ])
      topos;
    Tablefmt.print table
  in
  let china_sizes = if fast then [ 3; 9 ] else [ 3; 6; 9; 12; 15 ] in
  let world_sizes = if fast then [ 5; 15 ] else [ 3; 5; 10; 15; 20; 25 ] in
  table_of "Fig 11a — Scalability, China regions (YCSB-MC)"
    (List.map Topology.china china_sizes);
  table_of "Fig 11b — Scalability, worldwide DCs (YCSB-MC)"
    (List.map Topology.worldwide world_sizes)

(* --- Fig 12: fault-tolerance modes --- *)

let fig12 ?(fast = false) () =
  let s = setting ~fast in
  let p = ycsb_profile s Ycsb.medium_contention in
  let gen = Driver.ycsb_gens p ~seed:101 in
  let table =
    Tablefmt.create
      ~title:"Fig 12 — Fault-tolerance mechanisms (YCSB-MC)"
      ~headers:[ "system"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
  in
  let add_geo label ft =
    let params = Params.with_ft Params.default ft in
    let r, _ =
      Driver.run_geogauss ~params ~connections:s.ycsb_connections
        ~topology:(Topology.china3 ()) ~load:(Ycsb.load p) ~gen
        ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()
    in
    Tablefmt.add_row table
      [ label; f ~dec:0 r.Result.tput; f r.Result.mean_ms; f r.Result.p99_ms ]
  in
  add_geo "GeoG-LB" Params.Ft_local_backup;
  add_geo "GeoG-RB" Params.Ft_remote_backup;
  add_geo "GeoG-Raft" Params.Ft_raft;
  let add_det label make =
    let r =
      Driver.run_engine_with ~make ~topology:(Topology.china3 ()) ~gen
        ~connections:s.ycsb_connections ~warmup_ms:s.warmup_ms
        ~measure_ms:s.measure_ms ~label ()
    in
    Tablefmt.add_row table
      [ label; f ~dec:0 r.Result.tput; f r.Result.mean_ms; f r.Result.p99_ms ]
  in
  add_det "Calvin-Raft" (fun net ->
      let e = Gg_engines.Calvin.create_ft net engine_cfg in
      fun ~node txn cb -> Gg_engines.Calvin.submit e ~node txn cb);
  add_det "Aria-Raft" (fun net ->
      let e = Gg_engines.Aria.create_ft net engine_cfg in
      fun ~node txn cb -> Gg_engines.Aria.submit e ~node txn cb);
  Tablefmt.print table

(* --- Fig 13: failure timeline --- *)

let fig13 ?(fast = false) () =
  let records = if fast then 2_000 else 20_000 in
  let connections = if fast then 16 else 64 in
  let p = Ycsb.with_records Ycsb.medium_contention records in
  let cluster =
    Geogauss.Cluster.create ~topology:(Topology.china3 ())
      ~load:(Ycsb.load p) ()
  in
  let clients =
    List.init 3 (fun i ->
        let g = Ycsb.create p ~seed:(111 + i) in
        let cl =
          Geogauss.Client.create cluster ~home:i ~connections ~gen:(fun () ->
              Geogauss.Txn.Op_txn (Ycsb.next_txn g))
        in
        Geogauss.Client.start cl;
        cl)
  in
  let crash_at = if fast then 3_000 else 10_000 in
  let recover_at = if fast then 8_000 else 20_000 in
  let horizon = if fast then 12_000 else 30_000 in
  Geogauss.Cluster.run_for_ms cluster crash_at;
  Geogauss.Cluster.crash cluster 2;
  Geogauss.Cluster.run_for_ms cluster (recover_at - crash_at);
  Geogauss.Cluster.recover cluster 2;
  Geogauss.Cluster.run_for_ms cluster (horizon - recover_at);
  let table =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "Fig 13 — Per-client throughput/latency under failure (crash node \
            2 @ %ds, recover @ %ds)"
           (crash_at / 1000) (recover_at / 1000))
      ~headers:
        [
          "t (s)"; "client1 tput"; "client1 lat"; "client2 tput"; "client2 lat";
          "client3 tput"; "client3 lat";
        ]
  in
  let bucket_us = 1_000_000 in
  let tls = List.map (fun cl -> Geogauss.Client.timeline cl ~bucket_us) clients in
  let len = List.fold_left (fun a tl -> max a (List.length tl)) 0 tls in
  for b = 0 to len - 1 do
    let cell tl =
      match List.nth_opt tl b with
      | Some (_, tput, lat) -> [ f ~dec:0 tput; f ~dec:0 lat ]
      | None -> [ "0"; "0" ]
    in
    Tablefmt.add_row table
      ((string_of_int b :: cell (List.nth tls 0))
      @ cell (List.nth tls 1)
      @ cell (List.nth tls 2))
  done;
  Tablefmt.print table

(* --- Ablations of the §5.1 design choices (not a paper figure) --- *)

let ablations ?(fast = false) () =
  let s = setting ~fast in
  let p = ycsb_profile s Ycsb.medium_contention in
  let gen = Driver.ycsb_gens p ~seed:121 in
  let table =
    Tablefmt.create
      ~title:"Ablations — pipelining and merge parallelism (YCSB-MC)"
      ~headers:[ "configuration"; "tput (txn/s)"; "mean lat (ms)"; "p99 (ms)" ]
  in
  let run label params =
    let r, _ =
      Driver.run_geogauss ~params ~connections:s.ycsb_connections
        ~topology:(Topology.china3 ()) ~load:(Ycsb.load p) ~gen
        ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms ~label ()
    in
    Tablefmt.add_row table
      [ label; f ~dec:0 r.Result.tput; f r.Result.mean_ms; f r.Result.p99_ms ]
  in
  run "baseline (pipeline, 8 merge threads)" Params.default;
  run "no pipelining (batch at epoch end)"
    { Params.default with Params.pipeline = false };
  run "single merge thread"
    {
      Params.default with
      Params.cost = { Params.default.Params.cost with Params.merge_threads = 1 };
    };
  run "no write-set compression proxy (4x records)"
    {
      Params.default with
      Params.cost =
        { Params.default.Params.cost with Params.merge_record_us = 24 };
    };
  Tablefmt.print table;
  (* The SSI extension the paper sketches in §4.3: read keys travel with
     the write sets, so WAN traffic grows — the cost the paper cites for
     not shipping it. *)
  let table =
    Tablefmt.create
      ~title:"Extension — SSI vs the paper's isolation levels (YCSB-MC)"
      ~headers:
        [ "isolation"; "tput (txn/s)"; "mean lat (ms)"; "abort rate"; "WAN KB/txn" ]
  in
  List.iter
    (fun iso ->
      let params = Params.with_isolation Params.default iso in
      let r, _ =
        Driver.run_geogauss ~params ~connections:s.ycsb_connections
          ~topology:(Topology.china3 ()) ~load:(Ycsb.load p) ~gen
          ~warmup_ms:s.warmup_ms ~measure_ms:s.measure_ms
          ~label:(Params.isolation_to_string iso)
          ()
      in
      Tablefmt.add_row table
        [
          Params.isolation_to_string iso; f ~dec:0 r.Result.tput;
          f r.Result.mean_ms; f ~dec:3 r.Result.abort_rate;
          f r.Result.wan_kb_per_txn;
        ])
    [ Params.SI; Params.SSI ];
  Tablefmt.print table

let all =
  [
    ("fig5", fig5);
    ("table2", table2);
    ("fig6", fig6);
    ("fig7", fig7);
    ("table3", table3);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("ablations", ablations);
  ]

let run ?fast name =
  match List.assoc_opt name all with
  | Some fn ->
    fn ?fast ();
    true
  | None -> false
