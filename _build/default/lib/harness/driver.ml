module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Topology = Gg_sim.Topology
module Op = Gg_workload.Op
module Engine = Gg_engines.Engine
module Stats = Gg_util.Stats

type workload_gen = int -> unit -> Op.txn

let ycsb_gens profile ~seed node =
  let g = Gg_workload.Ycsb.create profile ~seed:(seed + (1_000 * node)) in
  fun () -> Gg_workload.Ycsb.next_txn g

let tpcc_gens cfg ~seed node =
  let g = Gg_workload.Tpcc.create cfg ~seed:(seed + (1_000 * node)) ~node in
  fun () -> Gg_workload.Tpcc.next_txn g

(* Shared closed-loop measurement over an abstract submit function. *)
let drive ~sim ~net ~submit ~gen ~connections ~warmup_ms ~measure_ms =
  let n = Net.n_nodes net in
  let committed = ref 0 and aborted = ref 0 in
  let latency = Stats.Hist.create () in
  let warmup_end = Sim.now sim + Sim.ms warmup_ms in
  let measure_end = warmup_end + Sim.ms measure_ms in
  let in_window () =
    let now = Sim.now sim in
    now > warmup_end && now <= measure_end
  in
  for node = 0 to n - 1 do
    let next = gen node in
    for _ = 1 to connections do
      let rec loop () =
        let txn = next () in
        submit ~node txn (fun (o : Engine.outcome) ->
            if in_window () then
              if o.Engine.committed then begin
                incr committed;
                Stats.Hist.add latency (float_of_int o.Engine.latency_us)
              end
              else incr aborted;
            loop ())
      in
      loop ()
    done
  done;
  Sim.run_until sim warmup_end;
  Net.reset_accounting net;
  Sim.run_until sim measure_end;
  (!committed, !aborted, latency, Net.wan_bytes net)

let run_engine_with ~make ~topology ~gen ~connections ~warmup_ms ~measure_ms
    ~label () =
  let sim = Sim.create () in
  let rng = Gg_util.Rng.create 4242 in
  let net = Net.create sim ~rng ~topology () in
  let submit = make net in
  let committed, aborted, latency, wan =
    drive ~sim ~net ~submit ~gen ~connections ~warmup_ms ~measure_ms
  in
  Result.make ~label
    ~window_s:(float_of_int measure_ms /. 1000.0)
    ~committed ~aborted ~latency ~wan_bytes:wan

let run_engine (module E : Gg_engines.Engine.S) ?(config = Engine.default_config)
    ~topology ~gen ~connections ~warmup_ms ~measure_ms ~label () =
  run_engine_with
    ~make:(fun net ->
      let e = E.create net config in
      fun ~node txn cb -> E.submit e ~node txn cb)
    ~topology ~gen ~connections ~warmup_ms ~measure_ms ~label ()

type geo_extra = {
  phase_means : (string * (float * float * float * float * float)) list;
  epoch_cells : (int * Geogauss.Metrics.epoch_cell) list;
}

let run_geogauss ?(params = Geogauss.Params.default) ?(connections = 256)
    ~topology ~load ~gen ~warmup_ms ~measure_ms ~label () =
  let cluster = Geogauss.Cluster.create ~params ~topology ~load () in
  let n = Topology.n_nodes topology in
  let clients =
    List.init n (fun i ->
        let next = gen i in
        let cl =
          Geogauss.Client.create cluster ~home:i ~connections ~gen:(fun () ->
              Geogauss.Txn.Op_txn (next ()))
        in
        Geogauss.Client.start cl;
        cl)
  in
  Geogauss.Cluster.run_for_ms cluster warmup_ms;
  List.iter Geogauss.Client.reset_stats clients;
  for i = 0 to n - 1 do
    Geogauss.Metrics.reset (Geogauss.Cluster.metrics cluster i)
  done;
  Net.reset_accounting (Geogauss.Cluster.net cluster);
  Geogauss.Cluster.run_for_ms cluster measure_ms;
  let committed = List.fold_left (fun a c -> a + Geogauss.Client.committed c) 0 clients in
  let aborted = List.fold_left (fun a c -> a + Geogauss.Client.aborted c) 0 clients in
  let latency =
    List.fold_left
      (fun acc c -> Stats.Hist.merge acc (Geogauss.Client.latency c))
      (Stats.Hist.create ()) clients
  in
  let wan = Net.wan_bytes (Geogauss.Cluster.net cluster) in
  let result =
    Result.make ~label
      ~window_s:(float_of_int measure_ms /. 1000.0)
      ~committed ~aborted ~latency ~wan_bytes:wan
  in
  let extra =
    {
      phase_means =
        List.init n (fun i ->
            ( Printf.sprintf "node%d" i,
              Geogauss.Metrics.phase_means_us (Geogauss.Cluster.metrics cluster i) ));
      epoch_cells =
        Geogauss.Metrics.epoch_cells (Geogauss.Cluster.metrics cluster 0);
    }
  in
  (result, extra)
