(** Min-heap of timestamped events. Ties are broken by insertion order so
    simulation runs are fully deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:int -> 'a -> unit
(** Insert an event at the given timestamp. *)

val peek_time : 'a t -> int option
(** Timestamp of the earliest event, if any. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event (FIFO among equal
    timestamps). *)
