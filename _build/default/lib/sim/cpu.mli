(** CPU resource model: [cores] parallel servers with a FIFO run queue.

    Models the compute side of a database node (the paper's machines have
    32 vCPUs): when all cores are busy, work queues and latency grows,
    which is what caps single-node throughput in the experiments. *)

type t

val create : Sim.t -> cores:int -> t

val run : t -> cost:int -> (unit -> unit) -> unit
(** [run t ~cost k] occupies one core for [cost] µs (queueing first if all
    cores are busy), then calls [k]. [cost <= 0] runs [k] on the next
    event without occupying a core. *)

val busy : t -> int
(** Cores currently occupied. *)

val queued : t -> int
(** Jobs waiting for a core. *)

val busy_us : t -> int
(** Cumulative core-busy microseconds (for utilization reporting). *)

val utilization : t -> since:int -> float
(** Average fraction of cores busy over the window [since, now]. *)
