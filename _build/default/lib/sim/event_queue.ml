type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end
