type job = { cost : int; k : unit -> unit }

type t = {
  sim : Sim.t;
  cores : int;
  mutable busy : int;
  queue : job Queue.t;
  mutable busy_us : int;
}

let create sim ~cores =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  { sim; cores; busy = 0; queue = Queue.create (); busy_us = 0 }

let rec start t job =
  t.busy <- t.busy + 1;
  t.busy_us <- t.busy_us + job.cost;
  Sim.schedule t.sim ~after:job.cost (fun () ->
      t.busy <- t.busy - 1;
      (* Free the core before running the continuation so that work the
         continuation submits sees an accurate busy count. *)
      if not (Queue.is_empty t.queue) then start t (Queue.pop t.queue);
      job.k ())

let run t ~cost k =
  if cost <= 0 then Sim.schedule t.sim ~after:0 k
  else begin
    let job = { cost; k } in
    if t.busy < t.cores then start t job else Queue.add job t.queue
  end

let busy t = t.busy
let queued t = Queue.length t.queue
let busy_us t = t.busy_us

let utilization t ~since =
  let window = Sim.now t.sim - since in
  if window <= 0 then 0.0
  else
    float_of_int t.busy_us /. float_of_int (window * t.cores)
