lib/sim/cpu.mli: Sim
