lib/sim/net.ml: Array Gg_util Sim Topology
