lib/sim/sim.mli:
