lib/sim/topology.ml: Array Printf
