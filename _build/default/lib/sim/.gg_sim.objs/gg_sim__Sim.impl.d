lib/sim/sim.ml: Event_queue
