lib/sim/cpu.ml: Queue Sim
