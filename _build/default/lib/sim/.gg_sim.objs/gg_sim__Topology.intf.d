lib/sim/topology.mli:
