lib/sim/net.mli: Gg_util Sim Topology
