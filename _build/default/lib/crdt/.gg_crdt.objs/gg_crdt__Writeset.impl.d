lib/crdt/writeset.ml: Array Bytes Gg_storage Gg_util List Meta Option Printf
