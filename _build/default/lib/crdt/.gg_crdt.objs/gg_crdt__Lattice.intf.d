lib/crdt/lattice.mli:
