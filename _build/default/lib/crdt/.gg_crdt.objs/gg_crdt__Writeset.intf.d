lib/crdt/writeset.mli: Gg_storage Gg_util Meta
