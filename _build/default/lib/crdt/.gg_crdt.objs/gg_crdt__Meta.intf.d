lib/crdt/meta.mli: Gg_storage Gg_util
