lib/crdt/merge.mli: Gg_storage Meta
