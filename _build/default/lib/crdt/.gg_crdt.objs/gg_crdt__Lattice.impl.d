lib/crdt/lattice.ml: Map Set Stdlib String
