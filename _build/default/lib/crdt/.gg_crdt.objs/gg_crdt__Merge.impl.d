lib/crdt/merge.ml: Gg_storage Meta
