lib/crdt/meta.ml: Gg_storage Gg_util Printf
