module Row_header = Gg_storage.Row_header
module Csn = Gg_storage.Csn

type outcome = Win | Lose | Already

let decide (row : Row_header.t) ~(meta : Meta.t) =
  if row.cen > meta.cen then
    invalid_arg "Merge.merge_header: row.cen > T.cen cannot happen"
  else if row.cen < meta.cen then Win
  else if Csn.equal row.csn meta.csn then Already
  else if row.sen = meta.sen then
    (* First write wins: the row keeps the smallest csn. *)
    if Csn.compare row.csn meta.csn > 0 then Win else Lose
  else if row.sen < meta.sen then Win (* shorter transaction wins *)
  else Lose

let merge_header row ~meta =
  match decide row ~meta with
  | Win ->
    Row_header.stamp row ~sen:meta.Meta.sen ~csn:meta.Meta.csn
      ~cen:meta.Meta.cen;
    Win
  | (Lose | Already) as o -> o

let would_win row ~meta =
  match decide row ~meta with Win | Already -> true | Lose -> false
