module Value = Gg_storage.Value
module Enc = Gg_util.Codec.Enc
module Dec = Gg_util.Codec.Dec

type op = Insert | Update | Delete

type record = {
  table : string;
  key : Value.t array;
  op : op;
  data : Value.t array;
}

type t = {
  meta : Meta.t;
  records : record list;
  read_keys : (string * string) list;
      (* (table, encoded key); shipped only under the SSI extension *)
}

let make ?(read_keys = []) ~meta ~records () = { meta; records; read_keys }

let key_str r = Value.encode_key r.key

let op_to_string = function
  | Insert -> "insert"
  | Update -> "update"
  | Delete -> "delete"

let op_tag = function Insert -> 0 | Update -> 1 | Delete -> 2

let op_of_tag = function
  | 0 -> Insert
  | 1 -> Update
  | 2 -> Delete
  | n -> invalid_arg (Printf.sprintf "Writeset: bad op tag %d" n)

let encode_record enc r =
  Enc.string enc r.table;
  Enc.varint enc (Array.length r.key);
  Array.iter (Value.encode enc) r.key;
  Enc.byte enc (op_tag r.op);
  Enc.varint enc (Array.length r.data);
  Array.iter (Value.encode enc) r.data

let decode_record dec =
  let table = Dec.string dec in
  let klen = Dec.varint dec in
  let key = Array.init klen (fun _ -> Value.decode dec) in
  let op = op_of_tag (Dec.byte dec) in
  let dlen = Dec.varint dec in
  let data = Array.init dlen (fun _ -> Value.decode dec) in
  { table; key; op; data }

let encode enc t =
  Meta.encode enc t.meta;
  Enc.varint enc (List.length t.records);
  List.iter (encode_record enc) t.records;
  Enc.varint enc (List.length t.read_keys);
  List.iter
    (fun (table, key_str) ->
      Enc.string enc table;
      Enc.string enc key_str)
    t.read_keys

let decode dec =
  let meta = Meta.decode dec in
  let n = Dec.varint dec in
  let records = List.init n (fun _ -> decode_record dec) in
  let nr = Dec.varint dec in
  let read_keys =
    List.init nr (fun _ ->
        let table = Dec.string dec in
        let key_str = Dec.string dec in
        (table, key_str))
  in
  { meta; records; read_keys }

let encoded_size t =
  let enc = Enc.create () in
  encode enc t;
  Enc.length enc

module Batch = struct
  type ws = t

  type t = { node : int; cen : int; txns : ws list; eof : bool; count : int }

  let make ~node ~cen ~txns ~eof ?count () =
    { node; cen; txns; eof; count = Option.value count ~default:(List.length txns) }

  let to_wire t =
    let enc = Enc.create () in
    Enc.varint enc t.node;
    Enc.varint enc t.cen;
    Enc.bool enc t.eof;
    Enc.varint enc t.count;
    Enc.varint enc (List.length t.txns);
    List.iter (encode enc) t.txns;
    Gg_util.Compress.compress (Enc.to_bytes enc)

  let of_wire bytes =
    let raw = Gg_util.Compress.decompress bytes in
    let dec = Dec.of_bytes raw in
    try
      let node = Dec.varint dec in
      let cen = Dec.varint dec in
      let eof = Dec.bool dec in
      let count = Dec.varint dec in
      let n = Dec.varint dec in
      let txns = List.init n (fun _ -> decode dec) in
      { node; cen; txns; eof; count }
    with Dec.Truncated -> invalid_arg "Writeset.Batch.of_wire: truncated"

  let wire_size t = Bytes.length (to_wire t)
end
