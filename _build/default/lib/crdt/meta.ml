type t = { sen : int; cen : int; csn : Gg_storage.Csn.t }

let make ~sen ~cen ~csn = { sen; cen; csn }

let wins_over a b =
  if a.cen <> b.cen then
    invalid_arg "Meta.wins_over: comparing metas from different epochs";
  a.sen > b.sen || (a.sen = b.sen && Gg_storage.Csn.compare a.csn b.csn < 0)

let equal a b =
  a.sen = b.sen && a.cen = b.cen && Gg_storage.Csn.equal a.csn b.csn

let to_string t =
  Printf.sprintf "{sen=%d cen=%d csn=%s}" t.sen t.cen
    (Gg_storage.Csn.to_string t.csn)

let encode enc t =
  Gg_util.Codec.Enc.varint enc t.sen;
  Gg_util.Codec.Enc.varint enc t.cen;
  Gg_storage.Csn.encode enc t.csn

let decode dec =
  let sen = Gg_util.Codec.Dec.varint dec in
  let cen = Gg_util.Codec.Dec.varint dec in
  let csn = Gg_storage.Csn.decode dec in
  { sen; cen; csn }
