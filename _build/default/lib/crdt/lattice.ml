module Max_int = struct
  type t = int

  let bottom = min_int
  let merge = Stdlib.max
end

module Sset = Set.Make (String)

module Gset = struct
  type t = Sset.t

  let empty = Sset.empty
  let singleton = Sset.singleton
  let add = Sset.add
  let mem = Sset.mem
  let merge = Sset.union
  let cardinal = Sset.cardinal
  let elements = Sset.elements
end

module Lww = struct
  type t = { ts : int; node : int; value : string }

  let make ~ts ~node ~value = { ts; node; value }
  let bottom = { ts = min_int; node = min_int; value = "" }

  let merge a b =
    if a.ts > b.ts then a
    else if b.ts > a.ts then b
    else if a.node >= b.node then a
    else b

  let equal a b = a.ts = b.ts && a.node = b.node && a.value = b.value
end

module Smap = Map.Make (String)

module Lww_map = struct
  type t = Lww.t Smap.t

  let empty = Smap.empty

  let set t ~key v =
    Smap.update key
      (function None -> Some v | Some old -> Some (Lww.merge old v))
      t

  let get t ~key = Smap.find_opt key t

  let merge a b =
    Smap.union (fun _key x y -> Some (Lww.merge x y)) a b

  let cardinal = Smap.cardinal
  let equal a b = Smap.equal Lww.equal a b

  let delta t ~since = Smap.filter (fun _ (v : Lww.t) -> v.ts > since) t
  let bindings t = Smap.bindings t
end
