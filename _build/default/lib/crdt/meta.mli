(** Transaction metadata carried with every write set: the tuple
    {b \{sen, csn, cen\}} of paper §4.1.

    - [sen]: start epoch number — epoch in which the transaction began.
    - [cen]: commit epoch number — epoch whose snapshot the transaction
      commits into.
    - [csn]: globally unique commit sequence number (timestamp, node). *)

type t = { sen : int; cen : int; csn : Gg_storage.Csn.t }

val make : sen:int -> cen:int -> csn:Gg_storage.Csn.t -> t

val wins_over : t -> t -> bool
(** [wins_over a b] is the strict total order of Lemma 2 restricted to a
    single epoch: [a] beats [b] iff [a.sen > b.sen] (shorter transaction
    wins) or [a.sen = b.sen && a.csn < b.csn] (first write wins). Only
    meaningful when [a.cen = b.cen]; raises [Invalid_argument]
    otherwise. *)

val equal : t -> t -> bool
val to_string : t -> string
val encode : Gg_util.Codec.Enc.t -> t -> unit
val decode : Gg_util.Codec.Dec.t -> t
