(** The epoch-aware delta-CRDT merge rule — paper Algorithm 2.

    [merge_header] is the pure heart of DeltaCRDTMerge: given a row
    header (the current pre-write winner for that row) and a candidate
    transaction's metadata, it decides who wins and stamps the header on
    a win. The rule, restricted to updates with the same commit epoch
    [cen], is a join in the lattice induced by {!Meta.wins_over}:

    - a row not yet pre-written in this epoch is always taken
      ([row.cen < T.cen]);
    - otherwise the {e shorter} transaction wins ([row.sen < T.sen]);
    - on equal [sen], the {e first} write wins (smaller [csn]).

    One deliberate deviation from the paper's pseudocode: re-merging the
    exact same update (equal csn — csns are globally unique, so this is
    the same transaction retransmitted) is reported as {!Already} rather
    than falling into the abort branch. Without this, a duplicated
    delivery would abort its own transaction, violating the idempotence
    the paper requires of the merge. *)

type outcome =
  | Win  (** header stamped with the candidate's meta *)
  | Lose  (** candidate loses the write-write conflict *)
  | Already  (** idempotent re-merge of the same update; header untouched *)

val merge_header : Gg_storage.Row_header.t -> meta:Meta.t -> outcome
(** Precondition (guaranteed by the epoch synchronisation points of
    Algorithms 1 and 3): [row.cen <= meta.cen]. Raises
    [Invalid_argument] if violated — "row.cen > T.cen will never
    happen". *)

val would_win : Gg_storage.Row_header.t -> meta:Meta.t -> bool
(** Pure predicate version of {!merge_header} (no stamping);
    [Already] counts as a win. *)
