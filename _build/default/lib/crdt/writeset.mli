(** Write sets — the delta states GeoGauss replicates (paper §3).

    A transaction's write set is the list of rows it wrote, each a full
    row image plus operation kind. Write sets are the only thing
    exchanged between masters: together with {!Meta.t} they form the
    delta-state CRDT update merged by {!Merge}. *)

type op = Insert | Update | Delete

type record = {
  table : string;
  key : Gg_storage.Value.t array;
  op : op;
  data : Gg_storage.Value.t array;  (** empty for [Delete] *)
}

type t = {
  meta : Meta.t;
  records : record list;
  read_keys : (string * string) list;
      (** (table, encoded key) read-set keys, shipped only under the SSI
          extension (§4.3 sketches this and rejects it for WAN cost; we
          make the cost measurable) *)
}

val make :
  ?read_keys:(string * string) list ->
  meta:Meta.t ->
  records:record list ->
  unit ->
  t

val key_str : record -> string
(** Encoded primary key (hash-index key). *)

val op_to_string : op -> string

val encode : Gg_util.Codec.Enc.t -> t -> unit
val decode : Gg_util.Codec.Dec.t -> t

val encoded_size : t -> int
(** Size of the uncompressed binary encoding in bytes. *)

(** {1 Epoch batches}

    At the end of each epoch a node packages all write sets with that
    commit epoch number and ships them to every peer. An [eof] batch may
    carry zero transactions — the "empty message" of §4.2.3 that prevents
    remote peers from waiting forever. Mini-batches ([eof = false])
    support the pipelining optimisation of §5.1. *)

module Batch : sig
  type ws = t

  type t = {
    node : int;  (** originating replica *)
    cen : int;  (** commit epoch of every transaction inside *)
    txns : ws list;
    eof : bool;  (** final batch of this node's epoch [cen] *)
    count : int;
        (** on [eof] batches: total transactions the node committed into
            this epoch, across all mini-batches. Receivers use it to
            verify completeness even when the network reorders
            mini-batches after the EOF marker. *)
  }

  val make : node:int -> cen:int -> txns:ws list -> eof:bool -> ?count:int -> unit -> t
  (** [count] defaults to [List.length txns]. *)

  val to_wire : t -> bytes
  (** Encode then compress (the paper pipes write sets through protobuf +
      gzip). *)

  val of_wire : bytes -> t
  (** Raises [Invalid_argument] on corrupt input. *)

  val wire_size : t -> int
end
