(** Classic state-based CRDT lattices, used by the Anna baseline
    (coordination-free KV with lattice composition) and by the property
    tests that contrast GeoGauss's epoch-scoped merge with plain
    eventually consistent merges. Each module provides a commutative,
    associative, idempotent [merge]. *)

module Max_int : sig
  type t = int

  val bottom : t
  val merge : t -> t -> t
end

module Gset : sig
  type t

  val empty : t
  val singleton : string -> t
  val add : string -> t -> t
  val mem : string -> t -> bool
  val merge : t -> t -> t
  val cardinal : t -> int
  val elements : t -> string list
end

module Lww : sig
  type t = { ts : int; node : int; value : string }
  (** Last-writer-wins register ordered by (ts, node). *)

  val make : ts:int -> node:int -> value:string -> t
  val bottom : t
  val merge : t -> t -> t
  val equal : t -> t -> bool
end

module Lww_map : sig
  type t
  (** Map lattice of string keys to {!Lww.t}: the Anna database state. *)

  val empty : t
  val set : t -> key:string -> Lww.t -> t
  val get : t -> key:string -> Lww.t option
  val merge : t -> t -> t
  val cardinal : t -> int
  val equal : t -> t -> bool

  val delta : t -> since:int -> t
  (** Entries with [ts > since] — the delta state gossiped to peers. *)

  val bindings : t -> (string * Lww.t) list
  (** Sorted by key. *)
end
