examples/quickstart.ml: Array Cluster Geogauss Gg_sim Gg_sql Gg_storage List Printf String Txn
