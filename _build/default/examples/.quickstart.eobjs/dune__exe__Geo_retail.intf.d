examples/geo_retail.mli:
