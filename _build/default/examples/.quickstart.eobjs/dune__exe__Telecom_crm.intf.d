examples/telecom_crm.mli:
