examples/geo_retail.ml: Array Client Cluster Geogauss Gg_sim Gg_storage Gg_util Gg_workload List Node Printf String Txn
