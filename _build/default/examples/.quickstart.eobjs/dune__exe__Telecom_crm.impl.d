examples/telecom_crm.ml: Client Cluster Geogauss Gg_sim Gg_storage Gg_util List Metrics Params Printf String Txn
