examples/failover.mli:
