examples/failover.ml: Client Cluster Geogauss Gg_sim Gg_storage Gg_util Gg_workload List Printf String Txn
