examples/quickstart.mli:
