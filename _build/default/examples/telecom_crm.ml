(* Telecom CRM: the ICT workload that motivates GeoGauss (paper §2.2).

   Run with:  dune exec examples/telecom_crm.exe

   A telecom provider's CRM serves subscriber-account operations from
   every region: balance top-ups, plan changes and usage lookups. The
   workload needs high throughput and strong replica consistency, but
   weak isolation suffices. This example runs the same mix under RC and
   RR and prints the throughput / latency / abort trade-off plus the
   per-phase breakdown (the paper's Table 2 view). *)

open Geogauss
module Value = Gg_storage.Value

let subscribers = 5_000
let connections = 24
let run_ms = 2_500

let load db =
  let t =
    Gg_storage.Db.create_table db ~name:"subscriber"
      ~columns:
        [
          { Gg_storage.Schema.name = "msisdn"; ty = Gg_storage.Schema.TInt };
          { name = "plan"; ty = TStr };
          { name = "balance_cents"; ty = TInt };
          { name = "data_mb"; ty = TInt };
        ]
      ~key:[ "msisdn" ]
  in
  for i = 0 to subscribers - 1 do
    Gg_storage.Table.load t
      [| Value.Int i; Value.Str "basic"; Value.Int 10_000; Value.Int 2_048 |]
  done

let workload region =
  let rng = Gg_util.Rng.create (7_000 + region) in
  let zipf = Gg_util.Zipf.create ~theta:0.7 ~n:subscribers in
  fun () ->
    let msisdn = Gg_util.Zipf.scrambled zipf rng in
    match Gg_util.Rng.int rng 10 with
    | 0 | 1 ->
      (* top-up *)
      Txn.Sql_txn
        {
          label = "topup";
          stmts =
            [
              ( "UPDATE subscriber SET balance_cents = balance_cents + ? WHERE msisdn = ?",
                [| Value.Int (500 * (1 + Gg_util.Rng.int rng 10)); Value.Int msisdn |] );
            ];
        }
    | 2 ->
      (* plan change: read current plan, then write *)
      Txn.Sql_txn
        {
          label = "plan_change";
          stmts =
            [
              ("SELECT plan FROM subscriber WHERE msisdn = ?", [| Value.Int msisdn |]);
              ( "UPDATE subscriber SET plan = ?, data_mb = ? WHERE msisdn = ?",
                [|
                  Value.Str (if Gg_util.Rng.bool rng then "premium" else "basic");
                  Value.Int (if Gg_util.Rng.bool rng then 10_240 else 2_048);
                  Value.Int msisdn;
                |] );
            ];
        }
    | 3 | 4 ->
      (* usage charge *)
      Txn.Sql_txn
        {
          label = "charge";
          stmts =
            [
              ( "UPDATE subscriber SET balance_cents = balance_cents - ?, data_mb = data_mb - ? \
                 WHERE msisdn = ? AND balance_cents > 0",
                [|
                  Value.Int (10 + Gg_util.Rng.int rng 200);
                  Value.Int (Gg_util.Rng.int rng 50);
                  Value.Int msisdn;
                |] );
            ];
        }
    | _ ->
      (* balance lookup (read-only: answered from the local snapshot) *)
      Txn.Sql_txn
        {
          label = "lookup";
          stmts =
            [
              ( "SELECT plan, balance_cents, data_mb FROM subscriber WHERE msisdn = ?",
                [| Value.Int msisdn |] );
            ];
        }

let run isolation =
  let params = Params.with_isolation Params.default isolation in
  let cluster = Cluster.create ~params ~topology:(Gg_sim.Topology.china3 ()) ~load () in
  let clients =
    List.init 3 (fun region ->
        let c = Client.create cluster ~home:region ~connections ~gen:(workload region) in
        Client.start c;
        c)
  in
  Cluster.run_for_ms cluster run_ms;
  List.iter Client.stop clients;
  Cluster.quiesce cluster;
  let committed = List.fold_left (fun a c -> a + Client.committed c) 0 clients in
  let aborted = List.fold_left (fun a c -> a + Client.aborted c) 0 clients in
  let lat =
    List.fold_left
      (fun acc c -> Gg_util.Stats.Hist.merge acc (Client.latency c))
      (Gg_util.Stats.Hist.create ()) clients
  in
  let p, e, w, m, l = Metrics.phase_means_us (Cluster.metrics cluster 0) in
  Printf.printf
    "%-3s  tput %6.0f txn/s   mean lat %5.1f ms   p99 %5.1f ms   abort rate %.3f\n"
    (Params.isolation_to_string isolation)
    (float_of_int committed /. (float_of_int run_ms /. 1000.))
    (Gg_util.Stats.Hist.mean lat /. 1000.)
    (Gg_util.Stats.Hist.p99 lat /. 1000.)
    (float_of_int aborted /. float_of_int (max 1 (committed + aborted)));
  Printf.printf
    "     phases (ms): parse %.2f  exec %.2f  wait %.2f  merge %.2f  log %.2f\n"
    (p /. 1000.) (e /. 1000.) (w /. 1000.) (m /. 1000.) (l /. 1000.);
  (match Cluster.digests cluster with
  | d :: rest when List.for_all (String.equal d) rest -> ()
  | _ -> print_endline "     ERROR: replicas diverged!")

let () =
  Printf.printf
    "== Telecom CRM mix (60%% lookups, 40%% updates) across 3 regions, %d \
     subscribers ==\n"
    subscribers;
  print_endline "Strong replica consistency at epoch granularity; pick the isolation level:";
  List.iter run [ Params.RC; Params.RR ];
  print_endline
    "\nThroughput and latency barely move between isolation levels — exactly \
     the paper's Fig 9 observation.\nRR's extra read-validation aborts show \
     up once transactions run long enough for\nsnapshots to change under \
     them (see `bench/main.exe fig9` and the isolation tests)."
