(* Quickstart: a three-region GeoGauss cluster driven through the SQL
   API.

   Run with:  dune exec examples/quickstart.exe

   Every replica accepts local reads AND writes (multi-master); the
   epoch-based OCC merges concurrent updates and answers clients once
   the epoch snapshot is globally consistent. *)

open Geogauss
module Value = Gg_storage.Value

(* A transaction is a list of (sql, parameters); the callback fires once
   the commit epoch's snapshot is generated on the serving replica. *)
let exec cluster ~node stmts =
  let result = ref None in
  Cluster.submit cluster ~node (Txn.Sql_txn { label = "quickstart"; stmts })
    (fun o -> result := Some o);
  (* Advance simulated time until the cluster answers. *)
  let budget = ref 1_000 in
  while !result = None && !budget > 0 do
    decr budget;
    Cluster.run_for_ms cluster 5
  done;
  match !result with
  | Some o -> o
  | None -> failwith "no response"

let show label = function
  | Txn.Committed { results; latency_us } ->
    Printf.printf "%-28s COMMIT in %5.1f ms\n" label
      (float_of_int latency_us /. 1000.);
    List.iter
      (fun (r : Gg_sql.Executor.result) ->
        List.iter
          (fun row ->
            print_string "    ";
            Array.iter (fun v -> Printf.printf "%s  " (Value.to_string v)) row;
            print_newline ())
          r.Gg_sql.Executor.rows)
      results
  | Txn.Aborted { reason; _ } ->
    Printf.printf "%-28s ABORT (%s)\n" label (Txn.abort_reason_to_string reason)

let () =
  print_endline "== GeoGauss quickstart: 3 regions (Zhangjiakou / Chengdu / Shenzhen) ==";
  (* [load] populates every replica identically — the initial snapshot. *)
  let cluster =
    Cluster.create
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(fun db ->
        let t =
          Gg_storage.Db.create_table db ~name:"accounts"
            ~columns:
              [
                { Gg_storage.Schema.name = "id"; ty = Gg_storage.Schema.TInt };
                { name = "owner"; ty = TStr };
                { name = "balance"; ty = TInt };
              ]
            ~key:[ "id" ]
        in
        Gg_storage.Table.load t [| Value.Int 1; Value.Str "ada"; Value.Int 100 |];
        Gg_storage.Table.load t [| Value.Int 2; Value.Str "alan"; Value.Int 200 |])
      ()
  in

  (* Local reads are served from the replica's snapshot: no WAN wait. *)
  show "read @ Zhangjiakou (node 0)"
    (exec cluster ~node:0 [ ("SELECT owner, balance FROM accounts WHERE id = 1", [||]) ]);

  (* A write commits only after its epoch's write sets have been merged
     on all replicas — roughly one cross-region one-way delay later. *)
  show "transfer @ Chengdu (node 1)"
    (exec cluster ~node:1
       [
         ("UPDATE accounts SET balance = balance - 30 WHERE id = 1", [||]);
         ("UPDATE accounts SET balance = balance + 30 WHERE id = 2", [||]);
       ]);

  (* GeoGauss guarantees sequential consistency at epoch granularity,
     not linearizability: a read at another replica a few milliseconds
     after the commit may still see the previous snapshot... *)
  show "immediate read @ node 0"
    (exec cluster ~node:0 [ ("SELECT balance FROM accounts WHERE id = 1", [||]) ]);
  (* ...but one epoch later every replica serves the merged state. *)
  Cluster.run_for_ms cluster 100;
  List.iter
    (fun node ->
      show
        (Printf.sprintf "balances @ node %d" node)
        (exec cluster ~node [ ("SELECT id, balance FROM accounts ORDER BY id", [||]) ]))
    [ 0; 1; 2 ];

  (* Parameterized statements use ? placeholders. *)
  show "insert with params @ node 2"
    (exec cluster ~node:2
       [ ("INSERT INTO accounts VALUES (?, ?, ?)", [| Value.Int 3; Value.Str "grace"; Value.Int 500 |]) ]);

  show "aggregate @ node 0"
    (exec cluster ~node:0
       [ ("SELECT COUNT(*), SUM(balance) FROM accounts", [||]) ]);

  (* Replica-state digests prove byte-level convergence. *)
  Cluster.quiesce cluster;
  (match Cluster.digests cluster with
  | d :: rest when List.for_all (String.equal d) rest ->
    Printf.printf "\nAll 3 replicas converged (digest %s)\n" (String.sub d 0 12)
  | _ -> print_endline "\nERROR: replicas diverged!");
  Printf.printf "Total committed: %d, aborted: %d\n"
    (Cluster.total_committed cluster)
    (Cluster.total_aborted cluster)
