(* Global flash sale: three regions hammer the same inventory rows.

   Run with:  dune exec examples/geo_retail.exe

   This is the scenario from the paper's introduction — a multinational
   retailer whose customers in every region write to the same catalog.
   With a sharded master-follower design all those writes would cross
   the WAN to a single master; with GeoGauss each region writes locally
   and the epoch merge resolves conflicts deterministically: stock never
   goes negative, oversells abort, and all replicas agree. *)

open Geogauss
module Value = Gg_storage.Value
module Op = Gg_workload.Op

let n_products = 20
let initial_stock = 40
let connections_per_region = 12
let sale_ms = 2_500

let () =
  Printf.printf
    "== Flash sale: %d products x %d units, 3 regions buying concurrently ==\n"
    n_products initial_stock;
  let cluster =
    Cluster.create
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(fun db ->
        let t =
          Gg_storage.Db.create_table db ~name:"inventory"
            ~columns:
              [
                { Gg_storage.Schema.name = "product"; ty = Gg_storage.Schema.TInt };
                { name = "stock"; ty = TInt };
                { name = "sold"; ty = TInt };
              ]
            ~key:[ "product" ]
        in
        for p = 0 to n_products - 1 do
          Gg_storage.Table.load t [| Value.Int p; Value.Int initial_stock; Value.Int 0 |]
        done)
      ()
  in
  (* Each purchase is a read-check-decrement on one product row. The
     stock check runs on the local snapshot; the write-write merge keeps
     one winner per row per conflict. Under RR isolation, purchases that
     raced a concurrent sale of the same product are also caught by read
     validation. *)
  let attempted = Array.make 3 0 in
  let sold_out_hits = ref 0 in
  let clients =
    List.init 3 (fun region ->
        let rng = Gg_util.Rng.create (100 + region) in
        let zipf = Gg_util.Zipf.create ~theta:0.6 ~n:n_products in
        let gen () =
          attempted.(region) <- attempted.(region) + 1;
          let product = Gg_util.Zipf.next zipf rng in
          Txn.Sql_txn
            {
              label = "purchase";
              stmts =
                [
                  (* The guard in the WHERE clause makes over-selling a
                     0-rows-affected no-op rather than a negative stock. *)
                  ( "UPDATE inventory SET stock = stock - 1, sold = sold + 1 \
                     WHERE product = ? AND stock > 0",
                    [| Value.Int product |] );
                ];
            }
        in
        let c = Client.create cluster ~home:region ~connections:connections_per_region ~gen in
        Client.start c;
        c)
  in
  Cluster.run_for_ms cluster sale_ms;
  List.iter Client.stop clients;
  Cluster.quiesce cluster;
  ignore !sold_out_hits;

  (* Audit every replica. *)
  let audit node =
    let db = Node.db (Cluster.node cluster node) in
    let t = Gg_storage.Db.get_table_exn db "inventory" in
    let total_stock = ref 0 and total_sold = ref 0 and negative = ref 0 in
    Gg_storage.Table.scan t ~f:(fun e ->
        match (e.Gg_storage.Table.data.(1), e.Gg_storage.Table.data.(2)) with
        | Value.Int stock, Value.Int sold ->
          total_stock := !total_stock + stock;
          total_sold := !total_sold + sold;
          if stock < 0 then incr negative
        | _ -> ());
    (!total_stock, !total_sold, !negative)
  in
  let committed = Cluster.total_committed cluster in
  let aborted = Cluster.total_aborted cluster in
  Printf.printf "purchases attempted: %d   committed: %d   aborted: %d (%.1f%%)\n"
    (Array.fold_left ( + ) 0 attempted)
    committed aborted
    (100. *. float_of_int aborted /. float_of_int (max 1 (committed + aborted)));
  List.iter
    (fun node ->
      let stock, sold, negative = audit node in
      Printf.printf
        "replica %d: stock %4d  sold %4d  (stock+sold = %d, negatives: %d)\n"
        node stock sold (stock + sold) negative)
    [ 0; 1; 2 ];
  match Cluster.digests cluster with
  | d :: rest when List.for_all (String.equal d) rest ->
    Printf.printf "invariant holds on every replica; digests agree (%s)\n"
      (String.sub d 0 12)
  | _ -> print_endline "ERROR: replicas diverged!"
