(* Regional failover: crash a region mid-traffic and watch the cluster
   heal (the paper's §5.2 + Fig 13 scenario).

   Run with:  dune exec examples/failover.exe

   Timeline:
     t=0s   three regions serve local clients
     t=3s   the Shenzhen node (2) crashes; its clients time out and
            re-route to the nearest surviving region; survivors block
            briefly until Raft membership removes the dead node
     t=8s   the node recovers: it re-joins through a membership change
            and a state-snapshot transfer from the nearest donor
     t=13s  end — all live replicas must agree byte-for-byte            *)

open Geogauss
module Value = Gg_storage.Value

let () =
  print_endline "== Regional failover demo (3 regions, YCSB-like updates) ==";
  let records = 3_000 in
  let cluster =
    Cluster.create
      ~topology:(Gg_sim.Topology.china3 ())
      ~load:(fun db ->
        let t =
          Gg_storage.Db.create_table db ~name:"kv"
            ~columns:
              [
                { Gg_storage.Schema.name = "k"; ty = Gg_storage.Schema.TInt };
                { name = "v"; ty = TInt };
              ]
            ~key:[ "k" ]
        in
        for i = 0 to records - 1 do
          Gg_storage.Table.load t [| Value.Int i; Value.Int 0 |]
        done)
      ()
  in
  let clients =
    List.init 3 (fun region ->
        let rng = Gg_util.Rng.create (900 + region) in
        let gen () =
          let k = Gg_util.Rng.int rng records in
          Txn.Op_txn
            (Gg_workload.Op.make ~label:"upd"
               [
                 Gg_workload.Op.Add
                   { table = "kv"; key = [| Value.Int k |]; col = 1; delta = 1 };
               ])
        in
        let c = Client.create cluster ~home:region ~connections:8 ~gen in
        Client.start c;
        c)
  in
  let status label =
    Printf.printf "%-26s members=%s lsns=%s committed=%d timeouts(c3)=%d\n" label
      (String.concat "," (List.map string_of_int (Cluster.members cluster)))
      (String.concat "," (List.map string_of_int (Cluster.lsns cluster)))
      (Cluster.total_committed cluster)
      (Client.timeouts (List.nth clients 2))
  in

  Cluster.run_for_ms cluster 3_000;
  status "t=3s (healthy)";

  print_endline "\n-- crashing node 2 (Shenzhen) --";
  Cluster.crash cluster 2;
  Cluster.run_for_ms cluster 1_500;
  status "t=4.5s (detected, removed)";
  Printf.printf "   client3 now routed to node %d\n" (Cluster.route cluster ~preferred:2);

  Cluster.run_for_ms cluster 3_500;
  status "t=8s (2-node operation)";

  print_endline "\n-- recovering node 2 --";
  Cluster.recover cluster 2;
  Cluster.run_for_ms cluster 3_000;
  status "t=11s (re-joined)";
  Printf.printf "   client3 routed home to node %d\n" (Cluster.route cluster ~preferred:2);

  Cluster.run_for_ms cluster 2_000;
  List.iter Client.stop clients;
  Cluster.quiesce cluster;
  status "t=13s (final)";
  match Cluster.digests cluster with
  | d :: rest when List.for_all (String.equal d) rest ->
    Printf.printf
      "\nAll replicas (including the recovered one) agree: digest %s\n"
      (String.sub d 0 12)
  | ds ->
    Printf.printf "\nERROR: digests differ: %s\n"
      (String.concat " " (List.map (fun d -> String.sub d 0 8) ds))
