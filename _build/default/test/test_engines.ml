(* Tests for the baseline engine models: protocol-level behaviours that
   drive the paper's comparative results. *)

module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Topology = Gg_sim.Topology
module Op = Gg_workload.Op
module Value = Gg_storage.Value
open Gg_engines

let make_net ?(topo = Topology.china3 ()) () =
  let sim = Sim.create () in
  let net = Net.create sim ~rng:(Gg_util.Rng.create 5) ~topology:topo ~jitter_frac:0.0 () in
  (sim, net)

let read_txn k = Op.make ~label:"r" [ Op.Read { table = "t"; key = [| Value.Int k |] } ]

let write_txn k =
  Op.make ~label:"w"
    [ Op.Write { table = "t"; key = [| Value.Int k |]; data = [| Value.Int k |] } ]

let long_write_txn k delay =
  Op.make ~label:"lw" ~exec_extra_us:delay
    [ Op.Write { table = "t"; key = [| Value.Int k |]; data = [| Value.Int k |] } ]

let cfg = Engine.default_config

let submit_collect (type a) (module E : Engine.S with type t = a) (e : a) ~node txn =
  let r = ref None in
  E.submit e ~node txn (fun o -> r := Some o);
  r

(* --- input encoding --- *)

let test_input_bytes_scale () =
  let small = Engine.input_wire_bytes [ read_txn 1 ] in
  let big = Engine.input_wire_bytes (List.init 50 (fun i -> write_txn i)) in
  Alcotest.(check bool) "more txns, more bytes" true (big > small);
  Alcotest.(check bool) "read input is tiny" true (small < 100)

let test_input_bytes_add_smaller_than_write () =
  (* TPC-C style Adds ship deltas, not row images. *)
  let add =
    Op.make [ Op.Add { table = "t"; key = [| Value.Int 1 |]; col = 2; delta = 5 } ]
  in
  let write =
    Op.make
      [
        Op.Write
          {
            table = "t";
            key = [| Value.Int 1 |];
            data = Array.init 10 (fun _ -> Value.Str (String.make 50 'q'));
          };
      ]
  in
  Alcotest.(check bool) "add input smaller" true
    (Engine.input_wire_bytes [ add ] < Engine.input_wire_bytes [ write ])

(* --- Calvin --- *)

let test_calvin_commits_after_round () =
  let sim, net = make_net () in
  let e = Calvin.create net cfg in
  let r = submit_collect (module Calvin) e ~node:0 (write_txn 1) in
  Sim.run_until sim (Sim.sec 2);
  match !r with
  | Some { Engine.committed = true; latency_us } ->
    (* batch close + one-way WAN + execution *)
    Alcotest.(check bool)
      (Printf.sprintf "latency %d >= one-way 30ms" latency_us)
      true (latency_us >= 30_000)
  | _ -> Alcotest.fail "calvin must commit"

let test_calvin_never_aborts () =
  let sim, net = make_net () in
  let e = Calvin.create net cfg in
  let results = List.init 50 (fun i -> submit_collect (module Calvin) e ~node:(i mod 3) (write_txn (i mod 5))) in
  Sim.run_until sim (Sim.sec 3);
  List.iter
    (fun r ->
      match !r with
      | Some { Engine.committed = true; _ } -> ()
      | _ -> Alcotest.fail "ordered locks never abort")
    results

let test_calvin_long_txn_stalls_batch () =
  (* A long transaction inflates the round and delays everyone in it. *)
  let run with_long =
    let sim, net = make_net () in
    let e = Calvin.create net cfg in
    if with_long then ignore (submit_collect (module Calvin) e ~node:0 (long_write_txn 99 100_000));
    let r = submit_collect (module Calvin) e ~node:1 (write_txn 1) in
    Sim.run_until sim (Sim.sec 2);
    match !r with
    | Some { Engine.latency_us; _ } -> latency_us
    | None -> Alcotest.fail "no result"
  in
  let base = run false and stalled = run true in
  Alcotest.(check bool)
    (Printf.sprintf "batch barrier: %d vs %d" base stalled)
    true
    (stalled > base + 80_000)

(* --- Aria --- *)

let test_aria_aborts_waw_conflicts () =
  let sim, net = make_net () in
  let e = Aria.create net cfg in
  (* Same key written from two nodes in the same batch: one aborts. *)
  let r0 = submit_collect (module Aria) e ~node:0 (write_txn 7) in
  let r1 = submit_collect (module Aria) e ~node:1 (write_txn 7) in
  Sim.run_until sim (Sim.sec 2);
  let outcomes = List.filter_map (fun r -> !r) [ r0; r1 ] in
  Alcotest.(check int) "both answered" 2 (List.length outcomes);
  let committed = List.length (List.filter (fun o -> o.Engine.committed) outcomes) in
  Alcotest.(check int) "one commits, one aborts" 1 committed

let test_aria_disjoint_commit () =
  let sim, net = make_net () in
  let e = Aria.create net cfg in
  let r0 = submit_collect (module Aria) e ~node:0 (write_txn 1) in
  let r1 = submit_collect (module Aria) e ~node:1 (write_txn 2) in
  Sim.run_until sim (Sim.sec 2);
  List.iter
    (fun r ->
      match !r with
      | Some { Engine.committed = true; _ } -> ()
      | _ -> Alcotest.fail "disjoint writes commit")
    [ r0; r1 ]

(* --- CRDB --- *)

let test_crdb_reads_local () =
  let sim, net = make_net () in
  let e = Crdb.create net cfg in
  let r = submit_collect (module Crdb) e ~node:0 (read_txn 5) in
  Sim.run_until sim (Sim.sec 1);
  match !r with
  | Some { Engine.committed = true; latency_us } ->
    Alcotest.(check bool)
      (Printf.sprintf "stale reads are local: %d < 10ms" latency_us)
      true (latency_us < 10_000)
  | _ -> Alcotest.fail "read must commit"

let test_crdb_writes_pay_quorum () =
  let sim, net = make_net () in
  let e = Crdb.create net cfg in
  let r = submit_collect (module Crdb) e ~node:0 (write_txn 5) in
  Sim.run_until sim (Sim.sec 1);
  match !r with
  | Some { Engine.committed = true; latency_us } ->
    (* at least one cross-region quorum RTT (>= 50 ms) *)
    Alcotest.(check bool)
      (Printf.sprintf "quorum write: %d >= 50ms" latency_us)
      true (latency_us >= 50_000)
  | _ -> Alcotest.fail "write must commit"

let test_crdb_contention_queues () =
  let sim, net = make_net () in
  let e = Crdb.create net cfg in
  let rs = List.init 5 (fun i -> submit_collect (module Crdb) e ~node:(i mod 3) (write_txn 1)) in
  Sim.run_until sim (Sim.sec 5);
  let lats =
    List.map
      (fun r -> match !r with Some o -> o.Engine.latency_us | None -> Alcotest.fail "missing")
      rs
  in
  let mx = List.fold_left max 0 lats and mn = List.fold_left min max_int lats in
  Alcotest.(check bool)
    (Printf.sprintf "serialized on hot key: max %d > 2x min %d" mx mn)
    true
    (mx > 2 * mn)

(* --- SLOG --- *)

let test_slog_remote_home_penalty () =
  let sim, net = make_net () in
  let e = Slog.create net cfg in
  (* Find keys homed at region 0 and region 1. *)
  let homed r =
    let rec go k =
      if k > 10_000 then Alcotest.fail "no key found"
      else
        let key_str = Value.encode_key [| Value.Int k |] in
        if Hashtbl.hash key_str mod 3 = r then k else go (k + 1)
    in
    go 0
  in
  let local_key = homed 0 and remote_key = homed 1 in
  let r_local = submit_collect (module Slog) e ~node:0 (write_txn local_key) in
  let r_remote = submit_collect (module Slog) e ~node:0 (write_txn remote_key) in
  Sim.run_until sim (Sim.sec 2);
  match (!r_local, !r_remote) with
  | Some a, Some b ->
    Alcotest.(check bool)
      (Printf.sprintf "remote-home costs more: %d > %d + 30ms" b.Engine.latency_us
         a.Engine.latency_us)
      true
      (b.Engine.latency_us > a.Engine.latency_us + 30_000)
  | _ -> Alcotest.fail "missing results"

(* --- Anna --- *)

let test_anna_immediate_response () =
  let sim, net = make_net () in
  let e = Anna.create net cfg in
  let r = submit_collect (module Anna) e ~node:0 (write_txn 1) in
  Sim.run_until sim (Sim.sec 1);
  match !r with
  | Some { Engine.committed = true; latency_us } ->
    Alcotest.(check bool) "no coordination" true (latency_us < 5_000)
  | _ -> Alcotest.fail "anna must answer"

let test_anna_eventual_convergence () =
  let sim, net = make_net () in
  let e = Anna.create net cfg in
  for i = 0 to 20 do
    ignore (submit_collect (module Anna) e ~node:(i mod 3) (write_txn (i mod 7)))
  done;
  Sim.run_until sim (Sim.sec 1);
  Anna.flush_gossip e;
  Sim.run_until sim (Sim.sec 2);
  let d0 = Anna.state_digest e ~node:0 in
  let d1 = Anna.state_digest e ~node:1 in
  let d2 = Anna.state_digest e ~node:2 in
  Alcotest.(check string) "0=1" d0 d1;
  Alcotest.(check string) "1=2" d1 d2

(* --- cross-engine shape checks (the Fig 5 story in miniature) --- *)

let closed_loop (type a) (module E : Engine.S with type t = a) (e : a) sim ~conns ~horizon_ms gen =
  let committed = ref 0 in
  for node = 0 to 2 do
    for _ = 1 to conns do
      let rec loop () =
        E.submit e ~node (gen ()) (fun o ->
            if o.Engine.committed then incr committed;
            loop ())
      in
      loop ()
    done
  done;
  Sim.run_until sim (Sim.ms horizon_ms);
  !committed

let test_anna_faster_than_calvin () =
  let rng = Gg_util.Rng.create 1 in
  let gen () = write_txn (Gg_util.Rng.int rng 1000) in
  let sim1, net1 = make_net () in
  let anna = closed_loop (module Anna) (Anna.create net1 cfg) sim1 ~conns:8 ~horizon_ms:2_000 gen in
  let rng = Gg_util.Rng.create 1 in
  let gen () = write_txn (Gg_util.Rng.int rng 1000) in
  let sim2, net2 = make_net () in
  let calvin = closed_loop (module Calvin) (Calvin.create net2 cfg) sim2 ~conns:8 ~horizon_ms:2_000 gen in
  Alcotest.(check bool)
    (Printf.sprintf "anna %d >> calvin %d" anna calvin)
    true
    (anna > 5 * calvin)

let test_calvin_beats_crdb_under_writes () =
  let mk_gen () =
    let rng = Gg_util.Rng.create 2 in
    fun () -> write_txn (Gg_util.Rng.int rng 50)
  in
  let sim1, net1 = make_net () in
  let calvin =
    closed_loop (module Calvin) (Calvin.create net1 cfg) sim1 ~conns:8 ~horizon_ms:2_000 (mk_gen ())
  in
  let sim2, net2 = make_net () in
  let crdb =
    closed_loop (module Crdb) (Crdb.create net2 cfg) sim2 ~conns:8 ~horizon_ms:2_000 (mk_gen ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "calvin %d > crdb %d (contended writes)" calvin crdb)
    true (calvin > crdb)

let () =
  Alcotest.run "gg_engines"
    [
      ( "input encoding",
        [
          Alcotest.test_case "bytes scale" `Quick test_input_bytes_scale;
          Alcotest.test_case "add < write" `Quick test_input_bytes_add_smaller_than_write;
        ] );
      ( "calvin",
        [
          Alcotest.test_case "commits after round" `Quick test_calvin_commits_after_round;
          Alcotest.test_case "never aborts" `Quick test_calvin_never_aborts;
          Alcotest.test_case "long txn stalls batch" `Quick test_calvin_long_txn_stalls_batch;
        ] );
      ( "aria",
        [
          Alcotest.test_case "aborts WAW conflicts" `Quick test_aria_aborts_waw_conflicts;
          Alcotest.test_case "disjoint commit" `Quick test_aria_disjoint_commit;
        ] );
      ( "crdb",
        [
          Alcotest.test_case "reads local" `Quick test_crdb_reads_local;
          Alcotest.test_case "writes pay quorum" `Quick test_crdb_writes_pay_quorum;
          Alcotest.test_case "contention queues" `Quick test_crdb_contention_queues;
        ] );
      ("slog", [ Alcotest.test_case "remote home penalty" `Quick test_slog_remote_home_penalty ]);
      ( "anna",
        [
          Alcotest.test_case "immediate response" `Quick test_anna_immediate_response;
          Alcotest.test_case "eventual convergence" `Quick test_anna_eventual_convergence;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "anna >> calvin" `Slow test_anna_faster_than_calvin;
          Alcotest.test_case "calvin > crdb (writes)" `Slow test_calvin_beats_crdb_under_writes;
        ] );
    ]
