test/test_raft.ml: Alcotest Gg_raft Gg_sim Gg_util Hashtbl List Option Printf
