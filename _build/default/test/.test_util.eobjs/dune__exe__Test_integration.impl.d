test/test_integration.ml: Alcotest Array Backup Client Cluster Geogauss Gg_sim Gg_storage Gg_util Gg_workload List Node Option Params Printf QCheck QCheck_alcotest String Txn
