test/test_engines.ml: Alcotest Anna Aria Array Calvin Crdb Engine Gg_engines Gg_sim Gg_storage Gg_util Gg_workload Hashtbl List Printf Slog String
