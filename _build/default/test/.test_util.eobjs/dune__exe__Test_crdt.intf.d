test/test_crdt.mli:
