test/test_workload.ml: Alcotest Array Gg_storage Gg_workload Hashtbl List Op Printf String Tpcc Ycsb
