test/test_storage.ml: Alcotest Array Bytes Checkpoint Csn Db Gg_storage Gg_util List Option Printf QCheck QCheck_alcotest Result Row_header Schema Table Value Wal
