test/test_core.ml: Alcotest Array Client Cluster Fun Geogauss Gg_crdt Gg_sim Gg_storage Gg_util Gg_workload List Node Op_exec Option Params Printf QCheck QCheck_alcotest Txn
