test/test_crdt.ml: Alcotest Array Bytes Gg_crdt Gg_storage Gg_util Gset Hashtbl Lattice List Lww Lww_map Merge Meta Printf QCheck QCheck_alcotest Writeset
