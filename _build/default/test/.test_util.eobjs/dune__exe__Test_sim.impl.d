test/test_sim.ml: Alcotest Array Cpu Event_queue Gg_sim Gg_util List Net Option Sim Topology
