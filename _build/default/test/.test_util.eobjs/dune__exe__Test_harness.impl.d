test/test_harness.ml: Alcotest Gg_engines Gg_harness Gg_sim Gg_workload List Printf
