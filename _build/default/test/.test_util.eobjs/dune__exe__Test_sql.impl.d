test/test_sql.ml: Alcotest Array Ast Db Executor Gg_crdt Gg_sql Gg_storage Lexer List Option Parser Plan Result Schema String Table Value
