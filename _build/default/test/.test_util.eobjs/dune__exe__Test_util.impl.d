test/test_util.ml: Alcotest Array Bytes Codec Compress Gg_util List Printf QCheck QCheck_alcotest Rng Stats String Tablefmt Zipf
