(* Smoke tests of the benchmark harness: drivers measure, experiments
   execute in fast mode, and key cross-system shapes hold. *)

module Topology = Gg_sim.Topology
module Ycsb = Gg_workload.Ycsb

let small_profile = Ycsb.with_records Ycsb.medium_contention 2_000

let test_run_engine_measures () =
  let r =
    Gg_harness.Driver.run_engine
      (module Gg_engines.Calvin)
      ~topology:(Topology.china3 ())
      ~gen:(Gg_harness.Driver.ycsb_gens small_profile ~seed:1)
      ~connections:8 ~warmup_ms:200 ~measure_ms:600 ~label:"calvin" ()
  in
  Alcotest.(check bool) "committed > 0" true (r.Gg_harness.Result.committed > 0);
  Alcotest.(check bool) "tput > 0" true (r.Gg_harness.Result.tput > 0.0);
  Alcotest.(check bool) "latency sane" true
    (r.Gg_harness.Result.mean_ms > 10.0 && r.Gg_harness.Result.mean_ms < 500.0)

let test_run_geogauss_measures () =
  let r, extra =
    Gg_harness.Driver.run_geogauss ~connections:8
      ~topology:(Topology.china3 ())
      ~load:(Ycsb.load small_profile)
      ~gen:(Gg_harness.Driver.ycsb_gens small_profile ~seed:2)
      ~warmup_ms:300 ~measure_ms:800 ~label:"geogauss" ()
  in
  Alcotest.(check bool) "committed > 0" true (r.Gg_harness.Result.committed > 0);
  Alcotest.(check int) "phase means per node" 3
    (List.length extra.Gg_harness.Driver.phase_means);
  Alcotest.(check bool) "epoch cells recorded" true
    (List.length extra.Gg_harness.Driver.epoch_cells > 10)

let test_geogauss_beats_crdb_ycsb_mc () =
  (* The headline Fig 5 shape. *)
  let gen = Gg_harness.Driver.ycsb_gens small_profile ~seed:3 in
  let geo, _ =
    Gg_harness.Driver.run_geogauss ~connections:16
      ~topology:(Topology.china3 ())
      ~load:(Ycsb.load small_profile) ~gen ~warmup_ms:300 ~measure_ms:1_000
      ~label:"geogauss" ()
  in
  let crdb =
    Gg_harness.Driver.run_engine
      (module Gg_engines.Crdb)
      ~topology:(Topology.china3 ()) ~gen ~connections:16 ~warmup_ms:300
      ~measure_ms:1_000 ~label:"crdb" ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "geogauss tput %.0f > crdb %.0f" geo.Gg_harness.Result.tput
       crdb.Gg_harness.Result.tput)
    true
    (geo.Gg_harness.Result.tput > crdb.Gg_harness.Result.tput);
  Alcotest.(check bool)
    (Printf.sprintf "geogauss lat %.1f < crdb %.1f" geo.Gg_harness.Result.mean_ms
       crdb.Gg_harness.Result.mean_ms)
    true
    (geo.Gg_harness.Result.mean_ms < crdb.Gg_harness.Result.mean_ms)

let test_experiment_registry () =
  Alcotest.(check int) "12 experiments" 12 (List.length Gg_harness.Experiments.all);
  Alcotest.(check bool) "unknown rejected" false
    (Gg_harness.Experiments.run ~fast:true "nonsense")

let test_experiment_table3_fast () =
  (* Runs a real (fast) experiment end to end. *)
  Alcotest.(check bool) "table3 runs" true
    (Gg_harness.Experiments.run ~fast:true "table3")

let () =
  Alcotest.run "gg_harness"
    [
      ( "driver",
        [
          Alcotest.test_case "engine driver measures" `Slow test_run_engine_measures;
          Alcotest.test_case "geogauss driver measures" `Slow test_run_geogauss_measures;
          Alcotest.test_case "geogauss > crdb on YCSB-MC" `Slow test_geogauss_beats_crdb_ycsb_mc;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_experiment_registry;
          Alcotest.test_case "table3 fast" `Slow test_experiment_table3_fast;
        ] );
    ]
