(* Tests for the YCSB and TPC-C workload generators. *)

open Gg_workload
module Value = Gg_storage.Value

(* --- Op --- *)

let test_op_classification () =
  let t =
    Op.make
      [
        Op.Read { table = "t"; key = [| Value.Int 1 |] };
        Op.Add { table = "t"; key = [| Value.Int 2 |]; col = 1; delta = 5 };
      ]
  in
  Alcotest.(check bool) "not read only" false (Op.is_read_only t);
  Alcotest.(check int) "ops" 2 (Op.n_ops t);
  Alcotest.(check int) "writes" 1 (Op.n_writes t);
  let ro = Op.make [ Op.Read { table = "t"; key = [| Value.Int 1 |] } ] in
  Alcotest.(check bool) "read only" true (Op.is_read_only ro)

let test_op_write_size () =
  let t =
    Op.make
      [
        Op.Write
          {
            table = "t";
            key = [| Value.Int 1 |];
            data = [| Value.Int 1; Value.Str (String.make 100 'x') |];
          };
      ]
  in
  Alcotest.(check bool) "size reflects payload" true (Op.write_data_size t > 100)

(* --- YCSB --- *)

let test_ycsb_profiles () =
  Alcotest.(check (float 1e-9)) "RO reads" 1.0 Ycsb.read_only.Ycsb.read_pct;
  Alcotest.(check (float 1e-9)) "MC theta" 0.8 Ycsb.medium_contention.Ycsb.theta;
  Alcotest.(check (float 1e-9)) "HC writes" 0.5 Ycsb.high_contention.Ycsb.read_pct

let test_ycsb_load () =
  let p = Ycsb.with_records Ycsb.medium_contention 500 in
  let db = Gg_storage.Db.create () in
  Ycsb.load p db;
  let t = Gg_storage.Db.get_table_exn db Ycsb.table_name in
  Alcotest.(check int) "rows loaded" 500 (Gg_storage.Table.live_count t)

let test_ycsb_txn_shape () =
  let p = Ycsb.with_records Ycsb.medium_contention 1000 in
  let g = Ycsb.create p ~seed:1 in
  for _ = 1 to 100 do
    let t = Ycsb.next_txn g in
    Alcotest.(check int) "ops per txn" 10 (Op.n_ops t);
    Array.iter
      (fun o ->
        Alcotest.(check string) "table" Ycsb.table_name (Op.op_table o);
        match (Op.op_key o).(0) with
        | Value.Int k -> Alcotest.(check bool) "key range" true (k >= 0 && k < 1000)
        | _ -> Alcotest.fail "bad key type")
      t.Op.ops
  done

let test_ycsb_mix () =
  let p = Ycsb.with_records Ycsb.medium_contention 1000 in
  let g = Ycsb.create p ~seed:2 in
  let reads = ref 0 and total = ref 0 in
  for _ = 1 to 500 do
    let t = Ycsb.next_txn g in
    Array.iter
      (fun o ->
        incr total;
        match o with Op.Read _ -> incr reads | _ -> ())
      t.Op.ops
  done;
  let frac = float_of_int !reads /. float_of_int !total in
  Alcotest.(check bool)
    (Printf.sprintf "read fraction %.2f near 0.8" frac)
    true
    (frac > 0.75 && frac < 0.85)

let test_ycsb_read_only_profile () =
  let g = Ycsb.create (Ycsb.with_records Ycsb.read_only 100) ~seed:3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "all reads" true (Op.is_read_only (Ycsb.next_txn g))
  done

let test_ycsb_determinism () =
  let p = Ycsb.with_records Ycsb.medium_contention 1000 in
  let a = Ycsb.create p ~seed:9 and b = Ycsb.create p ~seed:9 in
  for _ = 1 to 20 do
    let ta = Ycsb.next_txn a and tb = Ycsb.next_txn b in
    Alcotest.(check bool) "same stream" true
      (Array.for_all2 (fun x y -> Op.op_key_str x = Op.op_key_str y) ta.Op.ops tb.Op.ops)
  done

let test_ycsb_long_txns () =
  let p =
    Ycsb.with_long_txns (Ycsb.with_records Ycsb.medium_contention 1000)
      ~frac:0.5 ~delay_us:20_000
  in
  let g = Ycsb.create p ~seed:4 in
  let long = ref 0 in
  for _ = 1 to 400 do
    if (Ycsb.next_txn g).Op.exec_extra_us = 20_000 then incr long
  done;
  Alcotest.(check bool)
    (Printf.sprintf "%d/400 long" !long)
    true
    (!long > 150 && !long < 250)

(* --- TPC-C --- *)

let test_tpcc_load () =
  let db = Gg_storage.Db.create () in
  Tpcc.load Tpcc.small db;
  let count name = Gg_storage.Table.live_count (Gg_storage.Db.get_table_exn db name) in
  Alcotest.(check int) "warehouses" 2 (count "warehouse");
  Alcotest.(check int) "districts" 4 (count "district");
  Alcotest.(check int) "customers" 20 (count "customer");
  Alcotest.(check int) "items" 20 (count "item");
  Alcotest.(check int) "stock" 40 (count "stock");
  Alcotest.(check int) "orders empty" 0 (count "orders")

let test_tpcc_new_order_shape () =
  let g = Tpcc.create Tpcc.small ~seed:1 ~node:0 in
  let t = Tpcc.new_order g in
  Alcotest.(check string) "label" "new_order" t.Op.label;
  (* warehouse read + district add + customer read + per-item (read+add)
     + order insert + per-item line insert *)
  let n_items = (Op.n_ops t - 4) / 3 in
  Alcotest.(check bool)
    (Printf.sprintf "items %d in 5..15" n_items)
    true
    (n_items >= 5 && n_items <= 15);
  let inserts =
    Array.fold_left
      (fun n o -> match o with Op.Insert _ -> n + 1 | _ -> n)
      0 t.Op.ops
  in
  Alcotest.(check int) "order + lines inserted" (n_items + 1) inserts

let test_tpcc_payment_shape () =
  let g = Tpcc.create Tpcc.small ~seed:2 ~node:0 in
  let t = Tpcc.payment g in
  Alcotest.(check string) "label" "payment" t.Op.label;
  Alcotest.(check int) "ops" 4 (Op.n_ops t);
  Alcotest.(check int) "writes" 3 (Op.n_writes t)

let test_tpcc_order_ids_unique_across_nodes () =
  let g0 = Tpcc.create Tpcc.small ~seed:1 ~node:0 in
  let g1 = Tpcc.create Tpcc.small ~seed:1 ~node:1 in
  let order_keys g =
    List.concat_map
      (fun _ ->
        Array.to_list (Tpcc.new_order g).Op.ops
        |> List.filter_map (function
             | Op.Insert { table = "orders"; key; _ } -> Some (Value.encode_key key)
             | _ -> None))
      (List.init 50 (fun i -> i))
  in
  let k0 = order_keys g0 and k1 = order_keys g1 in
  List.iter
    (fun k -> Alcotest.(check bool) "no cross-node collision" false (List.mem k k1))
    k0

let test_tpcc_mix () =
  let g = Tpcc.create Tpcc.small ~seed:5 ~node:0 in
  let no = ref 0 in
  let n = 1000 in
  for _ = 1 to n do
    if (Tpcc.next_txn g).Op.label = "new_order" then incr no
  done;
  let frac = float_of_int !no /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "new-order fraction %.2f" frac)
    true
    (frac > 0.45 && frac < 0.55)

let test_tpcc_full_mix_labels () =
  let g = Tpcc.create ~full_mix:true Tpcc.small ~seed:9 ~node:0 in
  let seen = Hashtbl.create 8 in
  for _ = 1 to 2_000 do
    Hashtbl.replace seen (Tpcc.next_txn g).Op.label ()
  done;
  List.iter
    (fun l ->
      Alcotest.(check bool) (l ^ " generated") true (Hashtbl.mem seen l))
    [ "new_order"; "payment"; "order_status"; "delivery"; "stock_level" ]

let test_tpcc_order_status_read_only () =
  let g = Tpcc.create Tpcc.small ~seed:10 ~node:0 in
  for _ = 1 to 30 do
    ignore (Tpcc.new_order g)
  done;
  (* order_status picks a random district; with orders spread over all
     four districts, some draw must hit a known order. *)
  let deepest = ref 0 in
  for _ = 1 to 20 do
    let t = Tpcc.order_status g in
    Alcotest.(check bool) "read only" true (Op.is_read_only t);
    deepest := max !deepest (Op.n_ops t)
  done;
  Alcotest.(check bool) "reads order + lines" true (!deepest >= 3)

let test_tpcc_delivery_consumes_orders () =
  let g = Tpcc.create Tpcc.small ~seed:11 ~node:0 in
  (* generate orders across both warehouses/districts *)
  for _ = 1 to 20 do
    ignore (Tpcc.new_order g)
  done;
  let d = Tpcc.delivery g in
  Alcotest.(check string) "label" "delivery" d.Op.label;
  Alcotest.(check bool) "writes carrier + balance" true (Op.n_writes d >= 2);
  (* with no orders at all, falls back to payment *)
  let g2 = Tpcc.create Tpcc.small ~seed:12 ~node:1 in
  Alcotest.(check string) "fallback" "payment" (Tpcc.delivery g2).Op.label

let test_tpcc_stock_level_read_only () =
  let g = Tpcc.create Tpcc.small ~seed:13 ~node:0 in
  let t = Tpcc.stock_level g in
  Alcotest.(check bool) "read only" true (Op.is_read_only t);
  Alcotest.(check int) "district + 10 stock reads" 11 (Op.n_ops t)

let test_tpcc_parse_cost_from_config () =
  let g = Tpcc.create Tpcc.default ~seed:1 ~node:0 in
  Alcotest.(check int) "parse cost (Table 2)" 4_600 (Tpcc.payment g).Op.parse_cost_us

let () =
  Alcotest.run "gg_workload"
    [
      ( "op",
        [
          Alcotest.test_case "classification" `Quick test_op_classification;
          Alcotest.test_case "write size" `Quick test_op_write_size;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "profiles" `Quick test_ycsb_profiles;
          Alcotest.test_case "load" `Quick test_ycsb_load;
          Alcotest.test_case "txn shape" `Quick test_ycsb_txn_shape;
          Alcotest.test_case "read/write mix" `Quick test_ycsb_mix;
          Alcotest.test_case "read-only profile" `Quick test_ycsb_read_only_profile;
          Alcotest.test_case "determinism" `Quick test_ycsb_determinism;
          Alcotest.test_case "long txns" `Quick test_ycsb_long_txns;
        ] );
      ( "tpcc",
        [
          Alcotest.test_case "load" `Quick test_tpcc_load;
          Alcotest.test_case "new-order shape" `Quick test_tpcc_new_order_shape;
          Alcotest.test_case "payment shape" `Quick test_tpcc_payment_shape;
          Alcotest.test_case "order id uniqueness" `Quick test_tpcc_order_ids_unique_across_nodes;
          Alcotest.test_case "mix" `Quick test_tpcc_mix;
          Alcotest.test_case "parse cost" `Quick test_tpcc_parse_cost_from_config;
          Alcotest.test_case "full mix labels" `Quick test_tpcc_full_mix_labels;
          Alcotest.test_case "order-status read-only" `Quick test_tpcc_order_status_read_only;
          Alcotest.test_case "delivery consumes orders" `Quick test_tpcc_delivery_consumes_orders;
          Alcotest.test_case "stock-level read-only" `Quick test_tpcc_stock_level_read_only;
        ] );
    ]
