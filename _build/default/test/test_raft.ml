(* Raft safety and liveness tests over the simulated network. *)

module Sim = Gg_sim.Sim
module Net = Gg_sim.Net
module Topology = Gg_sim.Topology
module Raft = Gg_raft.Raft

type harness = {
  sim : Sim.t;
  net : Net.t;
  raft : Raft.t;
  applied : (int, (int * string) list ref) Hashtbl.t;  (* node -> rev log *)
}

let make ?(n = 3) ?(topo = `Local) ?(seed = 7) () =
  let sim = Sim.create () in
  let rng = Gg_util.Rng.create seed in
  let topology =
    match topo with `Local -> Topology.single_region n | `China -> Topology.china n
  in
  let net = Net.create sim ~rng ~topology ~jitter_frac:0.02 () in
  let applied = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    Hashtbl.replace applied i (ref [])
  done;
  let apply ~node ~index data =
    let l = Hashtbl.find applied node in
    l := (index, data) :: !l
  in
  let raft = Raft.create net ~rng:(Gg_util.Rng.create (seed + 1)) ~apply () in
  Raft.start raft;
  { sim; net; raft; applied }

let applied_list h node = List.rev !(Hashtbl.find h.applied node)

let run_ms h ms = Sim.run_until h.sim (Sim.now h.sim + Sim.ms ms)

let leaders h =
  List.filter
    (fun i -> Raft.role h.raft i = Raft.Leader && not (Net.is_down h.net i))
    (List.init (Raft.n_nodes h.raft) (fun i -> i))

let test_elects_single_leader () =
  let h = make () in
  run_ms h 2_000;
  (match leaders h with
  | [ _ ] -> ()
  | ls -> Alcotest.failf "expected one leader, got %d" (List.length ls));
  (* At most one leader per term (here: only one live leader at all). *)
  Alcotest.(check bool) "has leader" true (Raft.current_leader h.raft <> None)

let test_replicates_entries () =
  let h = make () in
  run_ms h 2_000;
  let ok = Raft.propose_anywhere h.raft "cmd-1" in
  Alcotest.(check bool) "accepted" true ok;
  ignore (Raft.propose_anywhere h.raft "cmd-2");
  run_ms h 1_000;
  for i = 0 to 2 do
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "node %d applied" i)
      [ (1, "cmd-1"); (2, "cmd-2") ]
      (applied_list h i)
  done

let test_propose_rejected_on_follower () =
  let h = make () in
  run_ms h 2_000;
  let leader = Option.get (Raft.current_leader h.raft) in
  let follower = (leader + 1) mod 3 in
  Alcotest.(check bool) "follower rejects" false
    (Raft.propose h.raft ~node:follower "nope")

let test_leader_failover () =
  let h = make () in
  run_ms h 2_000;
  let old_leader = Option.get (Raft.current_leader h.raft) in
  ignore (Raft.propose_anywhere h.raft "before-crash");
  run_ms h 500;
  Net.set_down h.net old_leader true;
  run_ms h 3_000;
  (match Raft.current_leader h.raft with
  | Some l -> Alcotest.(check bool) "new leader elected" true (l <> old_leader)
  | None -> Alcotest.fail "no leader after failover");
  ignore (Raft.propose_anywhere h.raft "after-crash");
  run_ms h 1_000;
  let survivor = Option.get (Raft.current_leader h.raft) in
  Alcotest.(check (list (pair int string)))
    "survivor has both entries"
    [ (1, "before-crash"); (2, "after-crash") ]
    (applied_list h survivor)

let test_crashed_node_catches_up () =
  let h = make () in
  run_ms h 2_000;
  let leader = Option.get (Raft.current_leader h.raft) in
  let victim = (leader + 1) mod 3 in
  Net.set_down h.net victim true;
  ignore (Raft.propose_anywhere h.raft "while-down-1");
  ignore (Raft.propose_anywhere h.raft "while-down-2");
  run_ms h 1_000;
  Net.set_down h.net victim false;
  run_ms h 2_000;
  Alcotest.(check (list (pair int string)))
    "victim caught up"
    [ (1, "while-down-1"); (2, "while-down-2") ]
    (applied_list h victim)

let test_log_prefix_agreement () =
  (* Safety: applied sequences on all nodes are prefixes of each other. *)
  let h = make ~n:5 ~topo:`China () in
  run_ms h 3_000;
  for k = 1 to 20 do
    ignore (Raft.propose_anywhere h.raft (Printf.sprintf "op-%d" k));
    run_ms h 100
  done;
  run_ms h 3_000;
  let logs = List.init 5 (fun i -> applied_list h i) in
  let longest = List.fold_left (fun a l -> if List.length l > List.length a then l else a) [] logs in
  List.iter
    (fun l ->
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      Alcotest.(check bool) "prefix of longest" true (is_prefix l longest))
    logs

let test_no_commit_without_majority () =
  let h = make () in
  run_ms h 2_000;
  let leader = Option.get (Raft.current_leader h.raft) in
  (* Isolate the leader from both followers. *)
  List.iter (fun i -> if i <> leader then Net.set_down h.net i true)
    [ 0; 1; 2 ];
  ignore (Raft.propose h.raft ~node:leader "isolated");
  run_ms h 1_000;
  Alcotest.(check (list (pair int string)))
    "not applied without majority" [] (applied_list h leader)

let test_wan_election_stable () =
  (* Elections settle even with 30 ms one-way latencies. *)
  let h = make ~n:3 ~topo:`China () in
  run_ms h 5_000;
  Alcotest.(check bool) "leader exists" true (Raft.current_leader h.raft <> None);
  ignore (Raft.propose_anywhere h.raft "geo");
  run_ms h 2_000;
  let committed =
    List.length (List.filter (fun i -> applied_list h i <> []) [ 0; 1; 2 ])
  in
  Alcotest.(check int) "all applied" 3 committed

let test_term_monotonic_and_entries () =
  let h = make () in
  run_ms h 2_000;
  let leader = Option.get (Raft.current_leader h.raft) in
  let t0 = Raft.term h.raft leader in
  ignore (Raft.propose_anywhere h.raft "a");
  ignore (Raft.propose_anywhere h.raft "b");
  run_ms h 1_000;
  Alcotest.(check bool) "term stable without failures" true
    (Raft.term h.raft leader = t0);
  Alcotest.(check int) "log length" 2 (Raft.log_length h.raft leader);
  Alcotest.(check int) "commit index" 2 (Raft.commit_index h.raft leader);
  (match Raft.entry_at h.raft ~node:leader ~index:1 with
  | Some e -> Alcotest.(check string) "entry data" "a" e.Raft.data
  | None -> Alcotest.fail "missing entry");
  Alcotest.(check bool) "out of range" true
    (Raft.entry_at h.raft ~node:leader ~index:3 = None)

let test_leadership_stable_under_load () =
  (* Heartbeats suppress spurious elections over a long quiet period. *)
  let h = make () in
  run_ms h 2_000;
  let leader = Option.get (Raft.current_leader h.raft) in
  run_ms h 10_000;
  Alcotest.(check bool) "same leader after 10s idle" true
    (Raft.current_leader h.raft = Some leader)

let test_single_node_cluster () =
  let h = make ~n:1 () in
  run_ms h 2_000;
  Alcotest.(check bool) "self-elected" true (Raft.current_leader h.raft = Some 0);
  ignore (Raft.propose h.raft ~node:0 "solo");
  run_ms h 100;
  Alcotest.(check (list (pair int string))) "applied" [ (1, "solo") ] (applied_list h 0)

let () =
  Alcotest.run "gg_raft"
    [
      ( "raft",
        [
          Alcotest.test_case "elects single leader" `Quick test_elects_single_leader;
          Alcotest.test_case "replicates entries" `Quick test_replicates_entries;
          Alcotest.test_case "follower rejects propose" `Quick test_propose_rejected_on_follower;
          Alcotest.test_case "leader failover" `Quick test_leader_failover;
          Alcotest.test_case "crashed node catches up" `Quick test_crashed_node_catches_up;
          Alcotest.test_case "log prefix agreement" `Quick test_log_prefix_agreement;
          Alcotest.test_case "no commit without majority" `Quick test_no_commit_without_majority;
          Alcotest.test_case "wan election stable" `Quick test_wan_election_stable;
          Alcotest.test_case "term/entries accessors" `Quick test_term_monotonic_and_entries;
          Alcotest.test_case "stable leadership" `Quick test_leadership_stable_under_load;
          Alcotest.test_case "single-node cluster" `Quick test_single_node_cluster;
        ] );
    ]
