bin/geogauss_cli.mli:
