bin/geogauss_cli.ml: Arg Cmd Cmdliner Geogauss Gg_harness Gg_sim Gg_util Gg_workload List Printf Term
