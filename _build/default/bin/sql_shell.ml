(* Interactive SQL shell against a single-node GeoGauss instance.

   Each statement runs as an autocommit transaction through the full
   epoch-based OCC path (the simulation clock advances until the epoch
   snapshot confirms the commit). Multi-statement transactions:

     BEGIN; ...; COMMIT;   groups statements into one transaction
     \d                    list tables
     \q                    quit                                       *)

module Value = Gg_storage.Value
open Geogauss

let cluster =
  Cluster.create
    ~topology:(Gg_sim.Topology.single_region 1)
    ~load:(fun _db -> ())
    ()

let await (result : 'a option ref) =
  let budget = ref 1_000 in
  while !result = None && !budget > 0 do
    decr budget;
    Cluster.run_for_ms cluster 5
  done

let print_result (r : Gg_sql.Executor.result) =
  if r.Gg_sql.Executor.columns <> [] then begin
    let table =
      Gg_util.Tablefmt.create ~title:"" ~headers:r.Gg_sql.Executor.columns
    in
    List.iter
      (fun row ->
        Gg_util.Tablefmt.add_row table
          (Array.to_list (Array.map Value.to_string row)))
      r.Gg_sql.Executor.rows;
    Gg_util.Tablefmt.print table;
    Printf.printf "(%d rows)\n" (List.length r.Gg_sql.Executor.rows)
  end
  else if r.Gg_sql.Executor.affected > 0 then
    Printf.printf "OK, %d rows affected\n" r.Gg_sql.Executor.affected
  else print_endline "OK"

let run_txn stmts =
  let result = ref None in
  Cluster.submit cluster ~node:0
    (Txn.Sql_txn { label = "shell"; stmts })
    (fun o -> result := Some o);
  await result;
  match !result with
  | Some (Txn.Committed { results; latency_us }) ->
    List.iter print_result results;
    Printf.printf "COMMIT (epoch-confirmed in %.1f ms simulated)\n"
      (float_of_int latency_us /. 1000.)
  | Some (Txn.Aborted { reason; _ }) ->
    Printf.printf "ABORT: %s\n" (Txn.abort_reason_to_string reason)
  | None -> print_endline "ABORT: no response (simulation stalled?)"

let list_tables () =
  let db = Node.db (Cluster.node cluster 0) in
  match Gg_storage.Db.table_names db with
  | [] -> print_endline "(no tables)"
  | names ->
    List.iter
      (fun n ->
        let t = Gg_storage.Db.get_table_exn db n in
        Printf.printf "  %s (%d rows)\n" n (Gg_storage.Table.live_count t))
      names

let () =
  print_endline "GeoGauss SQL shell — single simulated node. \\q quits, \\d lists tables.";
  let in_txn = ref None in
  let rec loop () =
    print_string (if !in_txn = None then "geogauss> " else "geogauss*> ");
    match read_line () with
    | exception End_of_file -> ()
    | line -> (
      let line = String.trim line in
      let lowered = String.lowercase_ascii line in
      match lowered with
      | "" -> loop ()
      | "\\q" | "quit" | "exit" -> ()
      | "\\d" ->
        list_tables ();
        loop ()
      | "begin" | "begin;" ->
        if !in_txn <> None then print_endline "already in a transaction";
        in_txn := Some [];
        loop ()
      | "commit" | "commit;" ->
        (match !in_txn with
        | None -> print_endline "no transaction in progress"
        | Some stmts ->
          in_txn := None;
          run_txn (List.rev stmts));
        loop ()
      | "rollback" | "rollback;" ->
        in_txn := None;
        print_endline "ROLLBACK";
        loop ()
      | _ ->
        let stmt =
          if String.length line > 0 && line.[String.length line - 1] = ';' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        (match !in_txn with
        | Some stmts -> in_txn := Some ((stmt, [||]) :: stmts)
        | None -> run_txn [ (stmt, [||]) ]);
        loop ())
  in
  loop ()
