bin/sql_shell.ml: Array Cluster Geogauss Gg_sim Gg_sql Gg_storage Gg_util List Node Printf String Txn
