bin/sql_shell.mli:
